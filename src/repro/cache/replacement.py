"""Replacement policies for set-associative caches.

MBPTA-compliant caches optionally pair random placement with random
replacement (paper §2.1); deterministic designs conventionally use LRU.
All policies share a per-set-state interface so the cache core can stay
policy-agnostic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from repro.common.prng import CounterStream, XorShift128, counter_key


class ReplacementPolicy(ABC):
    """Per-set replacement state machine.

    The cache core invokes :meth:`on_hit` / :meth:`on_fill` to keep the
    state current and :meth:`victim_way` to choose the way evicted on a
    conflict miss.  ``num_sets``/``num_ways`` fix the state dimensions.
    """

    name: str = "abstract"

    def __init__(self, num_sets: int, num_ways: int) -> None:
        if num_sets <= 0 or num_ways <= 0:
            raise ValueError("num_sets and num_ways must be positive")
        self.num_sets = num_sets
        self.num_ways = num_ways

    @abstractmethod
    def on_hit(self, set_index: int, way: int) -> None:
        """Record a hit on ``way`` of ``set_index``."""

    @abstractmethod
    def on_fill(self, set_index: int, way: int) -> None:
        """Record that ``way`` of ``set_index`` was (re)filled."""

    @abstractmethod
    def victim_way(self, set_index: int) -> int:
        """Choose the way to evict in ``set_index`` (all ways valid)."""

    def reset(self) -> None:
        """Forget all history (used on cache flush)."""
        self._init_state()

    @abstractmethod
    def _init_state(self) -> None:
        ...


class LRUReplacement(ReplacementPolicy):
    """True least-recently-used via per-set recency stacks."""

    name = "lru"

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        self._init_state()

    def _init_state(self) -> None:
        # _stacks[s] lists ways from MRU (front) to LRU (back).
        self._stacks: List[List[int]] = [
            list(range(self.num_ways)) for _ in range(self.num_sets)
        ]

    def _touch(self, set_index: int, way: int) -> None:
        stack = self._stacks[set_index]
        stack.remove(way)
        stack.insert(0, way)

    def on_hit(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def on_fill(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def victim_way(self, set_index: int) -> int:
        return self._stacks[set_index][-1]


class FIFOReplacement(ReplacementPolicy):
    """First-in first-out: eviction order follows fill order only."""

    name = "fifo"

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        self._init_state()

    def _init_state(self) -> None:
        self._next: List[int] = [0] * self.num_sets

    def on_hit(self, set_index: int, way: int) -> None:
        pass  # hits do not affect FIFO order

    def on_fill(self, set_index: int, way: int) -> None:
        if way == self._next[set_index]:
            self._next[set_index] = (way + 1) % self.num_ways

    def victim_way(self, set_index: int) -> int:
        return self._next[set_index]


class NRUReplacement(ReplacementPolicy):
    """Not-recently-used with one reference bit per line."""

    name = "nru"

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        self._init_state()

    def _init_state(self) -> None:
        self._referenced: List[List[bool]] = [
            [False] * self.num_ways for _ in range(self.num_sets)
        ]

    def _mark(self, set_index: int, way: int) -> None:
        bits = self._referenced[set_index]
        bits[way] = True
        if all(bits):
            for w in range(self.num_ways):
                bits[w] = w == way

    def on_hit(self, set_index: int, way: int) -> None:
        self._mark(set_index, way)

    def on_fill(self, set_index: int, way: int) -> None:
        self._mark(set_index, way)

    def victim_way(self, set_index: int) -> int:
        bits = self._referenced[set_index]
        for way, referenced in enumerate(bits):
            if not referenced:
                return way
        return 0  # unreachable: _mark guarantees a clear bit exists


#: Default victim-draw seed; every stock RandomReplacement instance
#: starts its XorShift128 stream here, which is what makes the draw
#: sequence reproducible across trials (and vectorizable: the batch
#: kernels precompute the same stream as a shared table).
RANDOM_REPLACEMENT_SEED = 0xC0FFEE


class RandomReplacement(ReplacementPolicy):
    """PRNG-driven random victim selection (MBPTA random replacement).

    Two draw sources, both one-draw-per-conflict-miss in access order:

    * sequential (default): an :class:`XorShift128` stream, seeded at
      :data:`RANDOM_REPLACEMENT_SEED` unless a ``prng`` is supplied or
      :meth:`reseed` is called;
    * counter-based: pass ``draws=CounterStream(key)`` and the k-th
      victim is a pure function of ``(key, k)`` — the mode the vector
      kernels can replay in lock-step across trials without serial
      stepping.

    Which source is in use (and where its stream currently is) is
    exposed through :meth:`stream_descriptor` / ``draws_consumed`` so
    the kernel envelope probe can tell whether a vector twin can
    reproduce the remaining draw sequence bit-for-bit.  The descriptor
    is execution metadata only — it never enters spec identity.
    """

    name = "random"

    def __init__(self, num_sets: int, num_ways: int,
                 prng: Optional[XorShift128] = None,
                 draws: Optional[CounterStream] = None) -> None:
        super().__init__(num_sets, num_ways)
        if prng is not None and draws is not None:
            raise ValueError("pass either prng= or draws=, not both")
        self._draws = draws
        if draws is not None:
            self._prng = None
            self._stream = ("counter", draws.key)
        elif prng is not None:
            self._prng = prng
            self._stream = None  # externally-owned stream: position unknown
        else:
            self._prng = XorShift128(seed=RANDOM_REPLACEMENT_SEED)
            self._stream = ("xorshift", RANDOM_REPLACEMENT_SEED)
        self.draws_consumed = 0
        self._init_state()

    def _init_state(self) -> None:
        pass  # stateless apart from the draw stream

    def stream_descriptor(self) -> Optional[tuple]:
        """``("xorshift", seed)`` / ``("counter", key)`` — or ``None``.

        ``None`` means the draw source is an externally-owned PRNG whose
        position cannot be reconstructed, so no vector twin exists.
        """
        return self._stream

    def reseed(self, seed: int) -> None:
        if self._draws is not None:
            self._draws = CounterStream(counter_key(seed))
            self._stream = ("counter", self._draws.key)
        else:
            self._prng.reseed(seed)
            # After a reseed the stream is reconstructible from the seed
            # alone — but only for the generator the vector twin speaks.
            if isinstance(self._prng, XorShift128):
                self._stream = ("xorshift", seed)
            else:
                self._stream = None
        self.draws_consumed = 0

    def on_hit(self, set_index: int, way: int) -> None:
        pass

    def on_fill(self, set_index: int, way: int) -> None:
        pass

    def victim_way(self, set_index: int) -> int:
        if self._draws is not None:
            way = self._draws.draw(self.draws_consumed, self.num_ways)
        else:
            way = self._prng.next_below(self.num_ways)
        self.draws_consumed += 1
        return way


class TreePLRUReplacement(ReplacementPolicy):
    """Tree pseudo-LRU: one bit per internal node of a binary tree.

    The standard hardware approximation of LRU for 4-8 ways (used by
    the ARM9 family among many others): on a hit/fill the bits along
    the way's path are pointed *away* from it; the victim follows the
    bits from the root.  Requires a power-of-two way count.
    """

    name = "plru"

    def __init__(self, num_sets: int, num_ways: int) -> None:
        if num_ways & (num_ways - 1):
            raise ValueError(
                f"tree-PLRU needs a power-of-two way count, got {num_ways}"
            )
        super().__init__(num_sets, num_ways)
        self._levels = num_ways.bit_length() - 1
        self._init_state()

    def _init_state(self) -> None:
        # One bit per internal node, heap order (root at index 1).
        self._bits: List[List[int]] = [
            [0] * self.num_ways for _ in range(self.num_sets)
        ]

    def _touch(self, set_index: int, way: int) -> None:
        bits = self._bits[set_index]
        node = 1
        for level in range(self._levels - 1, -1, -1):
            branch = (way >> level) & 1
            bits[node] = 1 - branch  # point away from the touched way
            node = 2 * node + branch

    def on_hit(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def on_fill(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def victim_way(self, set_index: int) -> int:
        bits = self._bits[set_index]
        node = 1
        way = 0
        for _ in range(self._levels):
            branch = bits[node]
            way = (way << 1) | branch
            node = 2 * node + branch
        return way


_POLICIES = {
    LRUReplacement.name: LRUReplacement,
    FIFOReplacement.name: FIFOReplacement,
    NRUReplacement.name: NRUReplacement,
    RandomReplacement.name: RandomReplacement,
    TreePLRUReplacement.name: TreePLRUReplacement,
}


def make_replacement(name: str, num_sets: int, num_ways: int,
                     **kwargs) -> ReplacementPolicy:
    """Instantiate a replacement policy by name.

    Recognised names: ``lru``, ``fifo``, ``nru``, ``random``, ``plru``.
    """
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return cls(num_sets, num_ways, **kwargs)
