"""Cache models: geometry, placement and replacement policies, the
set-associative core, the RPCache secure design, multi-level
hierarchies and hardware-overhead estimates."""

from repro.cache.benes import BenesNetwork
from repro.cache.core import (
    CacheGeometry,
    CacheResult,
    CacheStats,
    SetAssociativeCache,
)
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig, MemoryModel
from repro.cache.placement import (
    HashRPPlacement,
    ModuloPlacement,
    PlacementPolicy,
    RandomModuloPlacement,
    XorIndexPlacement,
    make_placement,
)
from repro.cache.replacement import (
    FIFOReplacement,
    LRUReplacement,
    NRUReplacement,
    RandomReplacement,
    make_replacement,
)
from repro.cache.newcache import Newcache
from repro.cache.rpcache import RPCache

__all__ = [
    "BenesNetwork",
    "CacheGeometry",
    "CacheResult",
    "CacheStats",
    "SetAssociativeCache",
    "CacheHierarchy",
    "HierarchyConfig",
    "MemoryModel",
    "PlacementPolicy",
    "ModuloPlacement",
    "XorIndexPlacement",
    "HashRPPlacement",
    "RandomModuloPlacement",
    "make_placement",
    "LRUReplacement",
    "FIFOReplacement",
    "NRUReplacement",
    "RandomReplacement",
    "make_replacement",
    "Newcache",
    "RPCache",
]
