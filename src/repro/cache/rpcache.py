"""RPCache — the secure cache of Wang & Lee [27] (paper §3).

Two mechanisms distinguish RPCache from a conventional cache:

1. **Per-process permutation tables.**  Each process sees the sets
   through its own random permutation ``pi_pid`` of the index space.
   Within a process, conflicts are exactly those of modulo placement
   (the permutation is set-granular), which is why the paper finds the
   *same bytes* vulnerable as the deterministic baseline.

2. **Randomized interference.**  When a miss would evict a line that
   belongs to another process, or a protected (PP-bit) line, the
   replacement target is drawn from a *random* set instead, decoupling
   attacker-observable evictions from the victim's addresses.

The paper's §3 analysis — which this class makes testable — is that
both mechanisms make the cache's timing depend on the actual addresses
and on contender behaviour, breaking MBPTA time composability
(mbpta-p1) and full randomness (mbpta-p2).
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.prng import XorShift128
from repro.common.trace import MemoryAccess
from repro.cache.core import CacheGeometry, CacheResult, SetAssociativeCache
from repro.cache.placement import PlacementPolicy
from repro.cache.replacement import make_replacement


class PermutationTablePlacement(PlacementPolicy):
    """Set-granular per-process permutation, as used by RPCache.

    The ``seed`` argument of :meth:`map_set` selects the permutation
    table — the cache passes a pid-derived table id through it.
    """

    name = "rpcache_permutation"
    mbpta_class = "none"

    def __init__(self, layout) -> None:
        super().__init__(layout)
        self._tables: Dict[int, List[int]] = {}

    def table_for(self, table_id: int) -> List[int]:
        table = self._tables.get(table_id)
        if table is None:
            prng = XorShift128(seed=table_id ^ 0x9E3779B9)
            table = list(range(self.num_sets))
            # Fisher-Yates driven by the hardware PRNG.
            for i in range(self.num_sets - 1, 0, -1):
                j = prng.next_below(i + 1)
                table[i], table[j] = table[j], table[i]
            self._tables[table_id] = table
        return table

    def drop_table(self, table_id: int) -> None:
        """Forget a memoised table so the next use regenerates it."""
        self._tables.pop(table_id, None)

    def map_set(self, tag: int, index: int, seed: int = 0) -> int:
        return self.table_for(seed)[index]


class RPCache(SetAssociativeCache):
    """Set-associative cache with RPCache semantics."""

    def __init__(
        self,
        geometry: CacheGeometry,
        name: str = "rpcache",
        replacement_name: str = "lru",
        prng_seed: int = 0xD15EA5E,
    ) -> None:
        layout = geometry.layout()
        placement = PermutationTablePlacement(layout)
        replacement = make_replacement(
            replacement_name, geometry.num_sets, geometry.num_ways
        )
        super().__init__(geometry, placement, replacement, name=name)
        self._interference_prng = XorShift128(seed=prng_seed)
        #: Seed of the interference stream — lets the vector kernel
        #: rebuild the identical redirect-draw sequence as a table.
        self.interference_seed = prng_seed
        #: Count of interference events resolved by random-set eviction.
        self.randomized_evictions = 0
        # Each pid's permutation table id defaults to the pid itself.
        self._table_ids: Dict[int, int] = {}

    # -- permutation table management ---------------------------------------

    def table_id_for(self, pid: int) -> int:
        return self._table_ids.get(pid, pid)

    def assign_table(self, pid: int, table_id: int) -> None:
        """Point ``pid`` at a specific permutation table."""
        self._table_ids[pid] = table_id

    def lookup_set(self, access: MemoryAccess) -> int:
        decoded = self.layout.decode(access.address)
        table_id = self.table_id_for(access.pid)
        return self.placement.map_set(decoded.tag, decoded.index, table_id)

    # -- randomized interference ----------------------------------------------

    def _fill(self, access: MemoryAccess, set_index: int,
              line_address: int) -> CacheResult:
        ways = self._sets[set_index]
        free_way = next(
            (w for w, line in enumerate(ways) if not line.valid), None
        )
        if free_way is None:
            way = self.replacement.victim_way(set_index)
            victim = ways[way]
            if victim.pid != access.pid or victim.protected:
                # Interference that could leak information: redirect
                # the fill to a randomly selected set, so the eviction
                # the contender can observe is in a random location.
                self.randomized_evictions += 1
                set_index = self._interference_prng.next_below(
                    self.geometry.num_sets
                )
        return super()._fill(access, set_index, line_address)

    # -- RPCache-specific maintenance -------------------------------------------

    def refresh_table(self, pid: int, new_table_id: int) -> None:
        """Swap a process to a fresh permutation and invalidate its lines.

        RPCache updates a process' permutation table over time; lines
        mapped under the old permutation must not be hit under the new
        one, so they are invalidated.
        """
        self._table_ids[pid] = new_table_id
        for ways in self._sets:
            for line in ways:
                if line.valid and line.pid == pid:
                    line.valid = False
