"""Cache placement policies.

The paper contrasts four families of index functions:

* :class:`ModuloPlacement`       — conventional deterministic indexing.
* :class:`XorIndexPlacement`     — Aciicmez's XOR-with-random-number
  scheme [2]; *looks* random but preserves the conflict structure of
  modulo and therefore breaks mbpta-p2 (paper §3).
* :class:`HashRPPlacement`       — hash-based parametric random
  placement [16]: rotator blocks and XOR gates over tag+index bits and
  a seed.  Achieves Full Randomness (mbpta-p2).
* :class:`RandomModuloPlacement` — random modulo [15, 24]: seed-XORed
  index bits routed through a Benes network driven by seed-XORed tag
  bits.  Within a page the mapping is a bijection (no intra-page
  conflicts); across pages conflicts are random per seed.  Achieves
  Partial APOP-fixed Randomness (mbpta-p3).

Every policy maps ``(tag, index, seed) -> set`` deterministically; the
randomness across runs comes exclusively from drawing a new seed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict

from repro.common.address import AddressLayout
from repro.common.bitops import mask, rotate_left
from repro.common.prng import splitmix64_step
from repro.cache.benes import BenesNetwork


def _hash64(value: int) -> int:
    """Stateless 64-bit mixing function (one SplitMix64 step)."""
    _, out = splitmix64_step(value & mask(64))
    return out


class PlacementPolicy(ABC):
    """Maps a decoded address and a seed to a cache set."""

    #: Short identifier used by factories and reports.
    name: str = "abstract"

    #: MBPTA randomness class: "none", "full" (mbpta-p2) or "apop" (mbpta-p3).
    mbpta_class: str = "none"

    def __init__(self, layout: AddressLayout) -> None:
        self.layout = layout

    @property
    def num_sets(self) -> int:
        return self.layout.num_sets

    @abstractmethod
    def map_set(self, tag: int, index: int, seed: int = 0) -> int:
        """Return the cache set for an address with the given fields."""

    def map_address(self, address: int, seed: int = 0) -> int:
        """Convenience wrapper decoding ``address`` first."""
        decoded = self.layout.decode(address)
        return self.map_set(decoded.tag, decoded.index, seed)


class ModuloPlacement(PlacementPolicy):
    """Conventional placement: the index bits select the set directly."""

    name = "modulo"
    mbpta_class = "none"

    def map_set(self, tag: int, index: int, seed: int = 0) -> int:
        return index


class XorIndexPlacement(PlacementPolicy):
    """Aciicmez's scheme [2]: XOR the index bits with a random number.

    For a fixed seed this is a permutation of the *sets*, so two
    addresses conflict after XOR exactly when they conflict under
    modulo.  The paper (§3) shows this breaks mbpta-p2: conflicts are
    systematic across seeds.
    """

    name = "xor_index"
    mbpta_class = "none"

    def map_set(self, tag: int, index: int, seed: int = 0) -> int:
        xor_value = _hash64(seed) & mask(self.layout.index_bits)
        return index ^ xor_value


class HashRPPlacement(PlacementPolicy):
    """Hash-based parametric random placement (hashRP) [16].

    Hardware structure (Figure 2a of the paper): the concatenated
    tag+index bits are combined with seed material through a small
    number of rotator blocks and XOR gates, then folded down to the
    index width.  Distinct addresses conflict in a seed-dependent,
    pseudo-random way — Full Randomness (mbpta-p2).  No page-alignment
    constraint, which makes it suitable for L2/L3 caches whose way size
    exceeds the page size (paper §4).
    """

    name = "hashrp"
    mbpta_class = "full"

    #: Number of rotate+XOR rounds; two suffice to decorrelate all bits,
    #: a third adds margin (hardware cost is three rotator blocks).
    NUM_ROUNDS = 3

    def __init__(self, layout: AddressLayout) -> None:
        super().__init__(layout)
        self._line_bits = layout.tag_bits + layout.index_bits
        self._seed_cache: Dict[int, tuple] = {}

    def _round_material(self, seed: int) -> tuple:
        """Per-seed rotation amounts and round keys (memoised)."""
        material = self._seed_cache.get(seed)
        if material is None:
            rotations = []
            round_keys = []
            state = _hash64(seed ^ 0xA5A5A5A5A5A5A5A5)
            for _ in range(self.NUM_ROUNDS):
                state, out = splitmix64_step(state)
                rotations.append(1 + out % (self._line_bits - 1))
                state, out = splitmix64_step(state)
                round_keys.append(out & mask(self._line_bits))
            material = (tuple(rotations), tuple(round_keys))
            if len(self._seed_cache) < 65536:
                self._seed_cache[seed] = material
        return material

    def map_set(self, tag: int, index: int, seed: int = 0) -> int:
        rotations, round_keys = self._round_material(seed)
        value = ((tag << self.layout.index_bits) | index) & mask(self._line_bits)
        for rotation, round_key in zip(rotations, round_keys):
            value = rotate_left(value, rotation, self._line_bits)
            value ^= round_key
            # A multiply-free diffusion step implementable as XOR gates:
            # fold the top half back onto the bottom half, keeping width.
            value ^= value >> (self._line_bits // 2)
            value &= mask(self._line_bits)
        # Fold down to the index width.
        folded = 0
        width = self.layout.index_bits
        while value:
            folded ^= value & mask(width)
            value >>= width
        return folded


class RandomModuloPlacement(PlacementPolicy):
    """Random Modulo (RM) placement [15, 24].

    Hardware structure (Figure 2b of the paper): the index bits are
    XORed with seed bits and routed through a Benes network; the
    network's switch controls are derived from the seed-XORed tag bits.

    Because all lines of a 4 KB page share the same tag, they see the
    same XOR mask and the same Benes permutation, so the page's lines
    map bijectively onto the sets: intra-page conflicts are impossible
    (mbpta-p3 property 1).  Lines in different pages have different
    tags, hence independent pseudo-random controls, so cross-page
    conflicts are random per seed (mbpta-p3 property 2).

    RM requires way size == page size (paper §4); the constructor
    enforces the equivalent constraint that a page covers exactly one
    line per set.
    """

    name = "random_modulo"
    mbpta_class = "apop"

    def __init__(self, layout: AddressLayout, page_size: int = 4096) -> None:
        super().__init__(layout)
        way_size = layout.num_sets * layout.line_size
        if page_size % way_size != 0:
            raise ValueError(
                f"RM requires page size ({page_size}) to be a multiple of "
                f"the way size ({way_size})"
            )
        self.page_size = page_size
        self._network = BenesNetwork(layout.index_bits)
        self._control_mask = mask(self._network.num_switches)
        self._tag_cache: Dict[tuple, tuple] = {}

    def _per_tag_material(self, tag: int, seed: int) -> tuple:
        """(xor_mask, control) for a given tag and seed (memoised)."""
        key = (tag, seed)
        material = self._tag_cache.get(key)
        if material is None:
            seeded_tag = tag ^ (_hash64(seed) & mask(self.layout.tag_bits))
            mixed = _hash64(seeded_tag ^ (_hash64(seed ^ 0x517CC1B727220A95)))
            xor_mask = mixed & mask(self.layout.index_bits)
            control = (mixed >> self.layout.index_bits) ^ _hash64(mixed)
            control &= self._control_mask
            material = (xor_mask, control)
            if len(self._tag_cache) < 1 << 20:
                self._tag_cache[key] = material
        return material

    def map_set(self, tag: int, index: int, seed: int = 0) -> int:
        xor_mask, control = self._per_tag_material(tag, seed)
        return self._network.permute_bits(index ^ xor_mask, control)


_POLICIES = {
    ModuloPlacement.name: ModuloPlacement,
    XorIndexPlacement.name: XorIndexPlacement,
    HashRPPlacement.name: HashRPPlacement,
    RandomModuloPlacement.name: RandomModuloPlacement,
}


def make_placement(name: str, layout: AddressLayout, **kwargs) -> PlacementPolicy:
    """Instantiate a placement policy by name.

    Recognised names: ``modulo``, ``xor_index``, ``hashrp``,
    ``random_modulo``.
    """
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown placement {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return cls(layout, **kwargs)
