"""Set-associative cache core.

The cache is placement- and replacement-policy agnostic; the designs
studied in the paper differ only in the policy objects plugged in and
in how seeds are managed:

* deterministic cache  = modulo placement + LRU
* Aciicmez cache       = xor_index placement + LRU
* MBPTA cache (L1)     = random_modulo placement (+ optional random repl.)
* MBPTA cache (L2)     = hashrp placement
* TSCache              = the MBPTA caches with *per-process* seeds

Per-process seeds are supported natively: :meth:`set_seed` either fixes
a global seed or assigns a seed to one pid; lookups use the seed of the
access' pid.  A line cached under one pid's mapping is invisible to the
mapping of a pid with a different seed (it lives in a different set),
exactly as in hardware — tags store the full line address, so there is
never a false hit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.address import AddressLayout
from repro.common.bitops import is_power_of_two
from repro.common.trace import AccessType, MemoryAccess
from repro.cache.placement import PlacementPolicy
from repro.cache.replacement import ReplacementPolicy


@dataclass(frozen=True)
class CacheGeometry:
    """Size/shape of one cache level."""

    total_size: int
    num_ways: int
    line_size: int
    address_bits: int = 32

    def __post_init__(self) -> None:
        if self.total_size <= 0 or self.num_ways <= 0 or self.line_size <= 0:
            raise ValueError("geometry fields must be positive")
        if self.total_size % (self.num_ways * self.line_size) != 0:
            raise ValueError(
                f"total_size {self.total_size} not divisible by "
                f"ways*line_size {self.num_ways * self.line_size}"
            )
        if not is_power_of_two(self.num_sets):
            raise ValueError(f"num_sets {self.num_sets} must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.total_size // (self.num_ways * self.line_size)

    @property
    def way_size(self) -> int:
        """Bytes covered by one way (relevant for the RM page constraint)."""
        return self.num_sets * self.line_size

    def layout(self) -> AddressLayout:
        return AddressLayout(
            line_size=self.line_size,
            num_sets=self.num_sets,
            address_bits=self.address_bits,
        )


#: ARM920T-like geometries used throughout the paper's evaluation (§6.1.2).
ARM920T_L1_GEOMETRY = CacheGeometry(total_size=16 * 1024, num_ways=4, line_size=32)
ARM920T_L2_GEOMETRY = CacheGeometry(total_size=256 * 1024, num_ways=4, line_size=32)


@dataclass
class CacheLine:
    """State of one cache way within a set."""

    valid: bool = False
    line_address: int = 0
    pid: int = 0
    dirty: bool = False
    protected: bool = False


@dataclass
class CacheStats:
    """Counters accumulated by one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0
    stores: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.flushes = 0
        self.stores = 0


@dataclass(frozen=True)
class CacheResult:
    """Outcome of a single cache access."""

    hit: bool
    set_index: int
    way: int
    evicted: Optional[int] = None  # line address evicted, if any
    evicted_pid: Optional[int] = None


@dataclass
class SeedRegister:
    """Seed storage: one global seed plus optional per-pid overrides.

    Mirrors the hardware seed register(s) saved/restored by the OS on
    context switches (paper §5, Figure 3).
    """

    global_seed: int = 0
    per_pid: Dict[int, int] = field(default_factory=dict)

    def seed_for(self, pid: int) -> int:
        return self.per_pid.get(pid, self.global_seed)

    def set_global(self, seed: int) -> None:
        self.global_seed = seed

    def set_for_pid(self, pid: int, seed: int) -> None:
        self.per_pid[pid] = seed

    def clear_pid_seeds(self) -> None:
        self.per_pid.clear()


class SetAssociativeCache:
    """One cache level with pluggable placement and replacement."""

    def __init__(
        self,
        geometry: CacheGeometry,
        placement: PlacementPolicy,
        replacement: ReplacementPolicy,
        name: str = "cache",
        write_allocate: bool = True,
    ) -> None:
        if placement.num_sets != geometry.num_sets:
            raise ValueError(
                f"placement built for {placement.num_sets} sets, "
                f"geometry has {geometry.num_sets}"
            )
        if (replacement.num_sets, replacement.num_ways) != (
            geometry.num_sets,
            geometry.num_ways,
        ):
            raise ValueError("replacement dimensions do not match geometry")
        self.geometry = geometry
        self.placement = placement
        self.replacement = replacement
        self.name = name
        self.write_allocate = write_allocate
        self.layout = geometry.layout()
        self.seeds = SeedRegister()
        self.stats = CacheStats()
        self._sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(geometry.num_ways)]
            for _ in range(geometry.num_sets)
        ]
        self._protected_ranges: List[tuple] = []
        #: ``(line, seed) -> set`` memo for :meth:`lookup_set` — the
        #: mapping is a pure function of that pair, and the hot loops
        #: (prime/probe sweeps, background replays) re-map the same few
        #: hundred lines per seed over and over.  Bounded so adversarial
        #: address streams degrade to recomputes, not unbounded growth.
        self._set_memo: Dict[tuple, int] = {}

    # -- seed control ------------------------------------------------------

    def set_seed(self, seed: int, pid: Optional[int] = None) -> None:
        """Set the global seed, or the seed of one pid if given."""
        if pid is None:
            self.seeds.set_global(seed)
        else:
            self.seeds.set_for_pid(pid, seed)

    # -- protection (used by RPCache-style designs) -------------------------

    def protect_range(self, start: int, end: int) -> None:
        """Mark [start, end) as security-critical (sets the PP bit on fill)."""
        if end <= start:
            raise ValueError("empty protection range")
        self._protected_ranges.append((start, end))

    def _is_protected(self, address: int) -> bool:
        return any(start <= address < end for start, end in self._protected_ranges)

    # -- core access path ----------------------------------------------------

    def lookup_set(self, access: MemoryAccess) -> int:
        """Set an access maps to under the current seed of its pid."""
        seed = self.seeds.seed_for(access.pid)
        key = (access.address >> self.layout.offset_bits, seed)
        cached = self._set_memo.get(key)
        if cached is not None:
            return cached
        decoded = self.layout.decode(access.address)
        result = self.placement.map_set(decoded.tag, decoded.index, seed)
        if len(self._set_memo) < 65536:
            self._set_memo[key] = result
        return result

    def probe(self, access: MemoryAccess) -> bool:
        """Non-destructive hit check (no state update, no stats)."""
        set_index = self.lookup_set(access)
        line_address = self.layout.decode(access.address).line_address
        return any(
            line.valid and line.line_address == line_address
            for line in self._sets[set_index]
        )

    def access(self, access: MemoryAccess) -> CacheResult:
        """Perform one access, updating cache state and statistics."""
        self.stats.accesses += 1
        if access.access_type is AccessType.STORE:
            self.stats.stores += 1
        set_index = self.lookup_set(access)
        line_address = self.layout.decode(access.address).line_address
        ways = self._sets[set_index]

        for way, line in enumerate(ways):
            if line.valid and line.line_address == line_address:
                self.stats.hits += 1
                self.replacement.on_hit(set_index, way)
                if access.access_type is AccessType.STORE:
                    line.dirty = True
                return CacheResult(hit=True, set_index=set_index, way=way)

        self.stats.misses += 1
        if access.access_type is AccessType.STORE and not self.write_allocate:
            return CacheResult(hit=False, set_index=set_index, way=-1)
        return self._fill(access, set_index, line_address)

    def _choose_victim(self, access: MemoryAccess, set_index: int) -> int:
        """Victim selection hook (overridden by RPCache)."""
        ways = self._sets[set_index]
        for way, line in enumerate(ways):
            if not line.valid:
                return way
        return self.replacement.victim_way(set_index)

    def _fill(self, access: MemoryAccess, set_index: int,
              line_address: int) -> CacheResult:
        ways = self._sets[set_index]
        way = self._choose_victim(access, set_index)
        line = ways[way]
        evicted = line.line_address if line.valid else None
        evicted_pid = line.pid if line.valid else None
        if line.valid:
            self.stats.evictions += 1
        line.valid = True
        line.line_address = line_address
        line.pid = access.pid
        line.dirty = access.access_type is AccessType.STORE
        line.protected = self._is_protected(access.address)
        self.replacement.on_fill(set_index, way)
        return CacheResult(
            hit=False,
            set_index=set_index,
            way=way,
            evicted=evicted,
            evicted_pid=evicted_pid,
        )

    # -- maintenance ---------------------------------------------------------

    def flush(self) -> None:
        """Invalidate all lines (required on seed change with shared data)."""
        for ways in self._sets:
            for line in ways:
                line.valid = False
                line.dirty = False
                line.protected = False
        self.replacement.reset()
        self.stats.flushes += 1

    def invalidate_line(self, address: int, pid: int = 0) -> bool:
        """Invalidate the line holding ``address`` if present."""
        access = MemoryAccess(address, AccessType.LOAD, pid=pid)
        set_index = self.lookup_set(access)
        line_address = self.layout.decode(address).line_address
        for line in self._sets[set_index]:
            if line.valid and line.line_address == line_address:
                line.valid = False
                return True
        return False

    # -- inspection ------------------------------------------------------------

    def resident_lines(self, pid: Optional[int] = None) -> List[int]:
        """Line addresses currently cached (optionally for one pid)."""
        result = []
        for ways in self._sets:
            for line in ways:
                if line.valid and (pid is None or line.pid == pid):
                    result.append(line.line_address)
        return sorted(result)

    def set_occupancy(self, set_index: int) -> int:
        """Number of valid lines in ``set_index``."""
        return sum(1 for line in self._sets[set_index] if line.valid)

    def contains(self, address: int, pid: int = 0) -> bool:
        return self.probe(MemoryAccess(address, AccessType.LOAD, pid=pid))
