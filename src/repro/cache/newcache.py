"""Newcache — Wang & Lee's second-generation secure cache [28]
(paper §3).

Newcache decouples memory addresses from physical cache lines through
a fully-associative *logical-to-physical* mapping realised with
Line-Number registers (LNregs): the cache behaves like a direct-mapped
cache of a larger *logical* size (the ebit extends the index), and each
logical line is dynamically bound to an arbitrary physical line.

Security semantics (SecRAND replacement):

* A **tag miss with an LNreg hit** (the logical line is bound but holds
  a different tag) within the *same* protection domain replaces the
  bound line normally.
* Any miss that would cause *cross-domain* interference — an LNreg miss
  replacing a line of another process, or any contention with a
  protected line — selects a uniformly random physical line as the
  victim, so the eviction observable by a contender carries no address
  information.

The paper's §3 verdict carries over from RPCache: the dynamic mapping
makes timing depend on actual addresses and contender behaviour, so
Newcache is not MBPTA-compliant either — a claim the test suite checks
through the same probes used for RPCache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.bitops import bit_length_for, is_power_of_two
from repro.common.prng import XorShift128
from repro.common.trace import AccessType, MemoryAccess


@dataclass
class NewcacheLine:
    """One physical line with its LNreg binding."""

    valid: bool = False
    line_address: int = 0
    #: Logical line number currently bound to this physical line
    #: (the LNreg content), including the process context.
    lnreg: Optional[Tuple[int, int]] = None  # (pid, logical_index)
    protected: bool = False


@dataclass
class NewcacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    tag_misses: int = 0       # LNreg hit, wrong tag (index miss excluded)
    index_misses: int = 0     # LNreg miss
    randomized_evictions: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Newcache:
    """Fully-associative dynamically-mapped secure cache.

    Parameters
    ----------
    num_lines:
        Physical lines (power of two).
    line_size:
        Bytes per line.
    extra_index_bits:
        The ``k`` extra bits of Newcache's logical index (the paper's
        ebits): the logical direct-mapped space has
        ``num_lines * 2**extra_index_bits`` slots, which is what keeps
        the miss rate close to a conventional cache of the same size.
    """

    def __init__(
        self,
        num_lines: int = 512,
        line_size: int = 32,
        extra_index_bits: int = 4,
        prng_seed: int = 0x5EC4E7,
        address_bits: int = 32,
    ) -> None:
        if not is_power_of_two(num_lines):
            raise ValueError(f"num_lines must be a power of two, got {num_lines}")
        if not is_power_of_two(line_size):
            raise ValueError(f"line_size must be a power of two, got {line_size}")
        if extra_index_bits < 0:
            raise ValueError("extra_index_bits must be non-negative")
        self.num_lines = num_lines
        self.line_size = line_size
        self.extra_index_bits = extra_index_bits
        self.address_bits = address_bits
        self._offset_bits = bit_length_for(line_size)
        self._logical_index_bits = (
            bit_length_for(num_lines) + extra_index_bits
        )
        self._prng = XorShift128(prng_seed)
        self._lines: List[NewcacheLine] = [
            NewcacheLine() for _ in range(num_lines)
        ]
        # The LNreg content-addressable lookup: (pid, logical) -> line.
        self._lnreg_map: Dict[Tuple[int, int], int] = {}
        self._protected_ranges: List[Tuple[int, int]] = []
        self.stats = NewcacheStats()

    # -- address handling ---------------------------------------------------

    def logical_index(self, address: int) -> int:
        """The logical direct-mapped slot of an address."""
        return (address >> self._offset_bits) & (
            (1 << self._logical_index_bits) - 1
        )

    def _line_address(self, address: int) -> int:
        return address & ~(self.line_size - 1)

    # -- protection -----------------------------------------------------------

    def protect_range(self, start: int, end: int) -> None:
        """Mark [start, end) as security-critical."""
        if end <= start:
            raise ValueError("empty protection range")
        self._protected_ranges.append((start, end))

    def _is_protected(self, address: int) -> bool:
        return any(s <= address < e for s, e in self._protected_ranges)

    # -- the access path ---------------------------------------------------------

    def probe(self, access: MemoryAccess) -> bool:
        """Non-destructive hit check."""
        key = (access.pid, self.logical_index(access.address))
        slot = self._lnreg_map.get(key)
        if slot is None:
            return False
        line = self._lines[slot]
        return line.valid and line.line_address == self._line_address(
            access.address
        )

    def access(self, access: MemoryAccess):
        """Perform one access; returns (hit, physical_line_index)."""
        self.stats.accesses += 1
        key = (access.pid, self.logical_index(access.address))
        line_address = self._line_address(access.address)
        slot = self._lnreg_map.get(key)

        if slot is not None:
            line = self._lines[slot]
            if line.valid and line.line_address == line_address:
                self.stats.hits += 1
                return True, slot
            # Tag miss: the logical line is ours but holds other data
            # from the same (pid, slot) context -> normal replacement
            # of that very line (no information crosses domains).
            self.stats.misses += 1
            self.stats.tag_misses += 1
            self._bind(slot, key, line_address, access)
            return False, slot

        # Index (LNreg) miss: pick a victim among all physical lines.
        self.stats.misses += 1
        self.stats.index_misses += 1
        slot = self._choose_victim(access)
        self._bind(slot, key, line_address, access)
        return False, slot

    def _choose_victim(self, access: MemoryAccess) -> int:
        # Prefer an invalid line.
        for index, line in enumerate(self._lines):
            if not line.valid:
                return index
        # SecRAND: index misses always evict a *random* line, so the
        # replacement carries no information about either party's
        # addresses (this subsumes the cross-domain rule).
        self.stats.randomized_evictions += 1
        return self._prng.next_below(self.num_lines)

    def _bind(self, slot: int, key: Tuple[int, int], line_address: int,
              access: MemoryAccess) -> None:
        line = self._lines[slot]
        if line.lnreg is not None:
            self._lnreg_map.pop(line.lnreg, None)
        line.valid = True
        line.line_address = line_address
        line.lnreg = key
        line.protected = self._is_protected(access.address)
        self._lnreg_map[key] = slot

    # -- maintenance -----------------------------------------------------------

    def flush(self) -> None:
        for line in self._lines:
            line.valid = False
            line.lnreg = None
        self._lnreg_map.clear()

    def flush_pid(self, pid: int) -> int:
        """Invalidate all lines of one process (context teardown)."""
        removed = 0
        for key in [k for k in self._lnreg_map if k[0] == pid]:
            slot = self._lnreg_map.pop(key)
            self._lines[slot].valid = False
            self._lines[slot].lnreg = None
            removed += 1
        return removed

    # -- inspection ----------------------------------------------------------------

    def occupancy(self, pid: Optional[int] = None) -> int:
        """Valid lines (optionally restricted to one process)."""
        return sum(
            1
            for line in self._lines
            if line.valid and (pid is None or (line.lnreg or (None,))[0] == pid)
        )

    def contains(self, address: int, pid: int = 0) -> bool:
        return self.probe(MemoryAccess(address, AccessType.LOAD, pid=pid))
