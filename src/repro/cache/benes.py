"""Benes rearrangeable permutation network (Benes [4], cited in §4).

The Random Modulo cache feeds the (seed-XORed) index bits through a
Benes network whose switches are driven by bits derived from the
(seed-XORed) tag.  The network is rearrangeable: every permutation of
its inputs is achievable by some switch setting, and any switch setting
produces a permutation — the property RM relies on so that the
index -> set mapping stays a bijection within a page (mbpta-p3).

This module implements the classical recursive construction for an
arbitrary number of wires ``n`` (the AS-Benes construction): a column
of input switches, two recursive sub-networks of sizes ``ceil(n/2)``
and ``floor(n/2)``, and a column of output switches.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class BenesNetwork:
    """A Benes network over ``n`` wires.

    The network is represented as an ordered list of *switch stages*.
    Each stage is a list of ``(i, j)`` wire pairs; a control bit of 1
    swaps the values on wires ``i`` and ``j``, a control bit of 0
    passes them through.  Stages are applied in order, consuming one
    control bit per switch.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"network size must be >= 1, got {n}")
        self.n = n
        self._switches: List[tuple] = []
        self._build(list(range(n)))

    # -- construction ---------------------------------------------------

    def _build(self, wires: List[int]) -> None:
        """Recursively emit switches for the sub-network over ``wires``."""
        n = len(wires)
        if n <= 1:
            return
        if n == 2:
            self._switches.append((wires[0], wires[1]))
            return
        half = n // 2
        # Input column: pair wire 2k with 2k+1.  With odd n the last
        # wire goes straight into the upper sub-network.
        for k in range(half):
            self._switches.append((wires[2 * k], wires[2 * k + 1]))
        upper = [wires[2 * k] for k in range(half)]
        lower = [wires[2 * k + 1] for k in range(half)]
        if n % 2:
            upper.append(wires[-1])
        self._build(upper)
        self._build(lower)
        # Output column mirrors the input column.
        for k in range(half):
            self._switches.append((wires[2 * k], wires[2 * k + 1]))

    # -- queries ---------------------------------------------------------

    @property
    def num_switches(self) -> int:
        """Number of 2x2 switches, i.e. required control bits."""
        return len(self._switches)

    @property
    def switches(self) -> Sequence[tuple]:
        return tuple(self._switches)

    # -- routing ----------------------------------------------------------

    def route(self, values: Sequence, control: int) -> List:
        """Pass ``values`` (one per wire) through the network.

        ``control`` supplies one bit per switch, least-significant bit
        first.  Returns the permuted list of values.
        """
        if len(values) != self.n:
            raise ValueError(f"expected {self.n} values, got {len(values)}")
        if control < 0:
            raise ValueError("control word must be non-negative")
        out = list(values)
        for bit_pos, (i, j) in enumerate(self._switches):
            if (control >> bit_pos) & 1:
                out[i], out[j] = out[j], out[i]
        return out

    def permutation(self, control: int) -> List[int]:
        """The wire permutation realised by ``control``.

        ``result[k]`` is the input wire whose value ends up on output
        wire ``k``.
        """
        return self.route(list(range(self.n)), control)

    def permute_bits(self, value: int, control: int) -> int:
        """Permute the bits of a ``n``-bit integer (MSB = wire 0)."""
        bits = [(value >> (self.n - 1 - k)) & 1 for k in range(self.n)]
        routed = self.route(bits, control)
        result = 0
        for bit in routed:
            result = (result << 1) | bit
        return result

    # -- constructive rearrangeability ---------------------------------

    def control_for(self, permutation: Sequence[int]) -> int:
        """Find a control word realising a target permutation.

        ``permutation[k]`` names the input wire whose value must appear
        on output wire ``k`` (the format :meth:`permutation` returns).
        This is the constructive form of the Benes rearrangeability
        theorem [4] the RM design relies on, implemented with the
        classic looping (2-colouring) algorithm, recursing along the
        same structure as :meth:`_build` so control-bit positions line
        up with the switch list.

        Raises ``ValueError`` if ``permutation`` is not a permutation
        of ``range(n)``.
        """
        if sorted(permutation) != list(range(self.n)):
            raise ValueError("not a permutation of range(n)")
        controls = [0] * self.num_switches
        cursor = [0]
        self._route_permutation(self.n, list(permutation), controls, cursor)
        control = 0
        for index, bit in enumerate(controls):
            control |= bit << index
        if self.permutation(control) != list(permutation):
            raise AssertionError(
                "looping algorithm produced an inconsistent routing"
            )
        return control

    def _route_permutation(self, n: int, perm: List[int],
                           controls: List[int], cursor: List[int]) -> None:
        """Set the control bits realising ``perm`` on an ``n``-wire
        sub-network, consuming switch indices in construction order."""
        if n <= 1:
            return
        if n == 2:
            index = cursor[0]
            cursor[0] += 1
            controls[index] = 1 if perm[0] == 1 else 0
            return
        half = n // 2
        sides = self._two_colour(n, perm)

        # Input column: control 1 routes input 2j to the lower network.
        for j in range(half):
            index = cursor[0]
            cursor[0] += 1
            controls[index] = 1 if sides[2 * j] == "L" else 0

        # Sub-permutations in sub-network-local input positions: pair j
        # sends its upper-side element to upper position j; an odd
        # leftover wire enters the upper network at position ``half``.
        def upper_pos(element: int) -> int:
            if n % 2 and element == n - 1:
                return half
            return element // 2

        upper_size = half + (n % 2)
        upper_perm = [0] * upper_size
        lower_perm = [0] * half
        out_controls = [0] * half
        for k in range(half):
            a, b = perm[2 * k], perm[2 * k + 1]
            if sides[a] == "U":
                upper_element, lower_element = a, b
            else:
                upper_element, lower_element = b, a
            upper_perm[k] = upper_pos(upper_element)
            lower_perm[k] = lower_element // 2
            # Output switch k: control 1 when output 2k must take the
            # lower network's value.
            out_controls[k] = 1 if sides[perm[2 * k]] == "L" else 0
        if n % 2:
            upper_perm[half] = upper_pos(perm[n - 1])

        self._route_permutation(upper_size, upper_perm, controls, cursor)
        self._route_permutation(half, lower_perm, controls, cursor)
        for k in range(half):
            index = cursor[0]
            cursor[0] += 1
            controls[index] = out_controls[k]

    @staticmethod
    def _two_colour(n: int, perm: List[int]) -> List[str]:
        """Assign each input element to the Upper or Lower sub-network.

        Constraints: the two elements of every input pair take
        different sides, the two elements of every output pair take
        different sides, and with odd ``n`` both the last input wire
        and the element destined for the last output are forced Upper.
        The constraint graph is a disjoint union of paths and cycles of
        even length, so a BFS 2-colouring always succeeds (Benes [4]).
        """
        half = n // 2
        adjacency: List[List[int]] = [[] for _ in range(n)]
        for j in range(half):
            adjacency[2 * j].append(2 * j + 1)
            adjacency[2 * j + 1].append(2 * j)
        for k in range(half):
            a, b = perm[2 * k], perm[2 * k + 1]
            adjacency[a].append(b)
            adjacency[b].append(a)

        sides: List[Optional[str]] = [None] * n
        pending: List[int] = []
        if n % 2:
            sides[n - 1] = "U"
            pending.append(n - 1)
            if sides[perm[n - 1]] is None:
                sides[perm[n - 1]] = "U"
            elif sides[perm[n - 1]] != "U":
                raise AssertionError("odd-wire forcing conflict")
            pending.append(perm[n - 1])

        def flip(side: str) -> str:
            return "L" if side == "U" else "U"

        for start in list(pending) + list(range(n)):
            if sides[start] is None:
                sides[start] = "U"
            stack = [start]
            while stack:
                node = stack.pop()
                for neighbour in adjacency[node]:
                    expected = flip(sides[node])
                    if sides[neighbour] is None:
                        sides[neighbour] = expected
                        stack.append(neighbour)
                    elif sides[neighbour] != expected:
                        raise AssertionError(
                            "constraint graph not 2-colourable"
                        )
        return [s if s is not None else "U" for s in sides]
