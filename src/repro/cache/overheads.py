"""Structural hardware-overhead estimates for the randomized designs.

Section 6.2.3 of the paper reports that RM and hashRP were implemented
on a LEON3 FPGA with <1% processor-area increase and no operating-
frequency degradation, and that seed changes cost tens of cycles
(pipeline drain) while flushes happen once per hyperperiod.  Those
numbers cannot be *measured* from Python, so this module provides the
structural model that reproduces them: gate and latency counts derived
from the actual logic each design adds, normalised against a baseline
processor gate budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.benes import BenesNetwork
from repro.cache.core import CacheGeometry


#: Rough two-input-gate budget of a small in-order automotive core
#: (ARM920T-class, ~2.5 mm^2 in 180 nm; public gate counts put such
#: cores in the few-hundred-kGate range).
BASELINE_CORE_GATES = 400_000

#: Two-input gate equivalents for the primitive blocks.
GATES_PER_XOR = 1
GATES_PER_MUX2 = 3        # a 2:1 mux is ~3 NAND2
GATES_PER_FLIPFLOP = 6


@dataclass(frozen=True)
class OverheadEstimate:
    """Hardware cost of one placement design for one cache geometry."""

    design: str
    extra_gates: int
    extra_levels: int          # added logic depth on the index path
    seed_register_bits: int

    @property
    def area_fraction(self) -> float:
        """Added gates as a fraction of the baseline core."""
        return self.extra_gates / BASELINE_CORE_GATES

    @property
    def seed_change_cycles(self) -> int:
        """Cycles to change the seed register: drain in-flight accesses.

        The paper (§6.2.3) puts this at "tens of cycles"; we model it
        as draining a short in-order pipeline plus outstanding misses.
        """
        return 20


def estimate_modulo(geometry: CacheGeometry) -> OverheadEstimate:
    """The baseline adds nothing."""
    return OverheadEstimate("modulo", extra_gates=0, extra_levels=0,
                            seed_register_bits=0)


def estimate_xor_index(geometry: CacheGeometry) -> OverheadEstimate:
    """Aciicmez XOR placement: one XOR per index bit."""
    layout = geometry.layout()
    return OverheadEstimate(
        "xor_index",
        extra_gates=layout.index_bits * GATES_PER_XOR
        + layout.index_bits * GATES_PER_FLIPFLOP,
        extra_levels=1,
        seed_register_bits=layout.index_bits,
    )


def estimate_hashrp(geometry: CacheGeometry, num_rounds: int = 3) -> OverheadEstimate:
    """hashRP: rotator blocks (barrel shifters) + XOR trees + fold.

    A barrel rotator over ``w`` bits costs ``w * log2(w)`` 2:1 muxes;
    each round adds a ``w``-bit XOR stage, and the final fold XORs the
    line-number width down to the index width.
    """
    layout = geometry.layout()
    width = layout.tag_bits + layout.index_bits
    log_w = max(1, (width - 1).bit_length())
    rotator = width * log_w * GATES_PER_MUX2
    xor_stage = width * GATES_PER_XOR * 2  # round key + half-fold
    fold = width * GATES_PER_XOR
    gates = num_rounds * (rotator + xor_stage) + fold
    gates += 64 * GATES_PER_FLIPFLOP  # 64-bit seed register
    return OverheadEstimate(
        "hashrp",
        extra_gates=gates,
        extra_levels=num_rounds * (log_w + 2) + 1,
        seed_register_bits=64,
    )


def estimate_random_modulo(geometry: CacheGeometry) -> OverheadEstimate:
    """RM: index XOR stage + Benes network + tag-driven control hash."""
    layout = geometry.layout()
    network = BenesNetwork(layout.index_bits)
    switches = network.num_switches
    # Each 2x2 switch is two 2:1 muxes.
    benes_gates = switches * 2 * GATES_PER_MUX2
    xor_gates = (layout.index_bits + layout.tag_bits) * GATES_PER_XOR
    # Control derivation: a folded XOR tree over the tag bits per switch.
    control_gates = switches * max(1, layout.tag_bits // 2) * GATES_PER_XOR
    gates = benes_gates + xor_gates + control_gates
    gates += 64 * GATES_PER_FLIPFLOP
    depth = 2 * layout.index_bits - 1  # Benes stage count for n wires
    return OverheadEstimate(
        "random_modulo",
        extra_gates=gates,
        extra_levels=depth + 1,
        seed_register_bits=64,
    )


def estimate_design(name: str, geometry: CacheGeometry) -> OverheadEstimate:
    """Dispatch by placement-policy name."""
    estimators = {
        "modulo": estimate_modulo,
        "xor_index": estimate_xor_index,
        "hashrp": estimate_hashrp,
        "random_modulo": estimate_random_modulo,
    }
    try:
        return estimators[name](geometry)
    except KeyError:
        raise ValueError(f"unknown design {name!r}") from None


def total_area_fraction(geometries_and_designs) -> float:
    """Combined area fraction for several (geometry, design) pairs.

    The paper's claim is that the *whole* MBPTA retrofit (all caches)
    stayed under 1% of processor area; this helper lets benches verify
    our structural model lands in the same regime.
    """
    return sum(
        estimate_design(design, geometry).area_fraction
        for geometry, design in geometries_and_designs
    )
