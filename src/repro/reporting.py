"""Shared result reporting for every experiment consumer.

One place for the three output shapes the toolkit produces:

* aligned text tables (:func:`format_table`) for CLI commands and
  benchmark summaries,
* JSON documents (:func:`render_json`) that tolerate NumPy scalars,
  arrays, bytes and dataclasses, for machine-readable campaign output,
* run-stamped results files (:class:`ResultsFile`) — append-only
  records where each process run is delimited by a header, so a file
  that accumulates across many invocations stays legible,
* streaming campaign progress (:class:`CampaignProgress`) — a
  :class:`~repro.campaigns.runner.ProgressFn` that prints one
  progress/ETA line per completed cell or shard.

The benchmark harness (``benchmarks/reporting.py``) and the campaign
CLI both route through this module instead of hand-rolling printing.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time
from datetime import datetime, timezone
from typing import (
    Any,
    Callable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    TextIO,
)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    padding: int = 2,
) -> str:
    """Render rows as a left-aligned monospace table.

    Every cell is stringified; column widths fit the longest cell.
    """
    string_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        if len(row) != len(widths):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(widths)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    gap = " " * padding

    def line(cells: Sequence[str]) -> str:
        return gap.join(
            cell.ljust(widths[i]) for i, cell in enumerate(cells)
        ).rstrip()

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in string_rows)
    return "\n".join(out)


def json_default(obj: Any) -> Any:
    """``json.dumps`` fallback covering the types experiments emit."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    if isinstance(obj, (bytes, bytearray)):
        return obj.hex()
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    # NumPy scalars and arrays, without importing numpy eagerly.
    if hasattr(obj, "tolist"):
        return obj.tolist()
    if hasattr(obj, "item"):
        return obj.item()
    raise TypeError(
        f"object of type {type(obj).__name__} is not JSON serializable"
    )


def render_json(payload: Any, *, indent: Optional[int] = 2) -> str:
    """Serialize ``payload`` to JSON, tolerating NumPy/dataclasses."""
    return json.dumps(payload, indent=indent, default=json_default)


def format_duration(seconds: float) -> str:
    """Compact human-readable duration (``820ms``, ``47s``, ``3m12s``,
    ``2h05m``).

    Negative inputs (clock skew between the hosts stamping a span)
    clamp to ``0s``.  Sub-second durations render in milliseconds, and
    positive values below a millisecond render ``<1ms`` — a span that
    took *some* time must never read as taking none.
    """
    if seconds <= 0.0:
        return "0s"
    if seconds < 1.0:
        millis = int(round(seconds * 1000.0))
        if millis < 1:
            return "<1ms"
        if millis < 1000:
            return f"{millis}ms"
        # 0.9996s rounds up to 1000ms: fall through to the whole-
        # second path rather than rendering "1000ms".
    whole = int(round(max(0.0, seconds)))
    if whole < 60:
        return f"{whole}s"
    minutes, secs = divmod(whole, 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class CampaignProgress:
    """Streams one progress/ETA line per completed campaign unit.

    Wire an instance as :class:`~repro.campaigns.runner.CampaignRunner`'s
    ``progress`` callback.  It weights progress by sample counts (so a
    half-done 10^6-sample cell moves the needle more than a finished
    toy cell), and it treats cache-restored units specially: they
    count toward completion immediately, but — because they cost ~0
    compute — they are **excluded from the throughput estimate**, so
    resuming a cached sweep neither stalls the ETA at a bogus value
    nor collapses it to zero.  The math is guarded against the
    degenerate shapes resumed/distributed sweeps produce: zero-weight
    campaigns, all-cache-hit campaigns (no fresh work ever → no rate →
    ``eta --``/``done``, never a division by zero), and clocks that
    have not advanced.

    ``"partial"`` events (streamed merged-prefix previews) print a
    result line with a few summary fields instead of progress math —
    they carry no new work.

    Parameters
    ----------
    total_cells / total_work:
        Campaign size; build both from the spec list with
        :func:`campaign_totals`.
    stream:
        Output stream (default stderr, keeping stdout clean for
        tables/JSON).
    clock:
        Injectable time source for tests.
    worker_gauge:
        Optional live worker source: returning a number (e.g.
        ``WorkQueueBackend.live_worker_count``) gains every progress
        line a ``workers N`` column — the operator's view of an
        elastic pool growing and draining.  Returning a host→count
        mapping (``workers_by_host`` on the queue backends) renders
        the fleet total with a per-host breakdown whenever more than
        one host is serving.  Errors and None readings simply omit
        the column.
    """

    #: Summary fields shown on a partial-preview line, at most.
    PARTIAL_SUMMARY_FIELDS = 3

    def __init__(
        self,
        total_cells: int,
        total_work: int,
        stream: Optional[TextIO] = None,
        clock=time.monotonic,
        worker_gauge: Optional[
            Callable[[], "Optional[int | Mapping[str, int]]"]
        ] = None,
    ) -> None:
        self.total_cells = max(0, total_cells)
        self.total_work = max(1, total_work)
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock
        self.worker_gauge = worker_gauge
        self.started = clock()
        self.cells_done = 0
        self.work_done = 0
        #: Work completed by fresh computation (ETA rate basis).
        self.fresh_work_done = 0

    def _workers_suffix(self) -> str:
        if self.worker_gauge is None:
            return ""
        try:
            count = self.worker_gauge()
        except Exception:
            return ""  # a broken gauge must never break progress
        if count is None:
            return ""
        if isinstance(count, Mapping):
            # A host whose pool drained to zero mid-campaign is stale
            # bookkeeping, not fleet state — drop it rather than
            # rendering a noisy "hostB:0".
            live = {
                host: n for host, n in count.items() if n > 0
            }
            total = sum(live.values())
            if len(live) > 1:
                hosts = ", ".join(
                    f"{host}:{n}" for host, n in sorted(live.items())
                )
                return f" | workers {total} ({hosts})"
            return f" | workers {total}"
        return f" | workers {count}"

    def eta_seconds(self) -> Optional[float]:
        """Remaining seconds (≥ 0), or None with no fresh unit done
        yet — cache restores alone never produce a rate."""
        if self.fresh_work_done <= 0:
            return None
        rate = self.fresh_work_done / max(1e-9, self.clock() - self.started)
        return max(0.0, (self.total_work - self.work_done) / rate)

    def _prefix(self) -> str:
        percent = 100.0 * self.work_done / self.total_work
        return (
            f"[{self.cells_done}/{self.total_cells} cells, {percent:3.0f}%]"
        )

    def _print_partial(self, event) -> None:
        summary = dict(event.summary or {})
        fields = ", ".join(
            f"{key}={value}"
            for key, value in list(summary.items())
            [: self.PARTIAL_SUMMARY_FIELDS]
        )
        detail = f": {fields}" if fields else ""
        print(
            f"{self._prefix()} {event.label}{detail}"
            f"{self._workers_suffix()}",
            file=self.stream,
        )

    def __call__(self, event) -> None:
        if getattr(event, "event", "cell") == "partial":
            # Previews carry no new work — progress state is untouched.
            self._print_partial(event)
            return
        if event.event == "cell":
            self.cells_done += 1
        result = getattr(event, "result", None)
        early_stopped = bool(getattr(result, "early_stopped", False))
        work = max(0, event.work)
        self.work_done = min(self.total_work, self.work_done + work)
        # Early-stopped cell events carry the *skipped* remainder of
        # their budget: it completes the campaign's progress but cost
        # no compute, so — like cache restores — it must not inflate
        # the throughput estimate.
        if not event.from_cache and not early_stopped:
            self.fresh_work_done += work
        if event.from_cache:
            origin = "cached"
        elif early_stopped:
            decided = getattr(
                getattr(result, "payload", None), "trials", None
            )
            at = f" @ {decided}" if decided is not None else ""
            origin = f"early-stop{at}, {event.elapsed:.1f}s"
        else:
            origin = f"{event.elapsed:.1f}s"
        eta = self.eta_seconds()
        remaining = (
            f"eta {format_duration(eta)}"
            if eta is not None and self.work_done < self.total_work
            else ("done" if self.work_done >= self.total_work else "eta --")
        )
        print(
            f"{self._prefix()} "
            f"{event.label} ({origin}) | "
            f"elapsed {format_duration(self.clock() - self.started)} | "
            f"{remaining}{self._workers_suffix()}",
            file=self.stream,
        )


def campaign_totals(specs: Sequence[Any]) -> tuple:
    """(total_cells, total_work) for a spec list — the
    :class:`CampaignProgress` constructor arguments."""
    from repro.campaigns.runner import cell_weight

    return len(specs), sum(cell_weight(spec) for spec in specs)


def format_feed_line(event: Mapping[str, Any]) -> str:
    """One ``repro watch`` line from a campaign-service feed event.

    Feed events are the scheduler's serialized
    :class:`~repro.campaigns.results.ProgressEvent` docs (cell / shard
    / partial, see ``CampaignScheduler.status_doc``); the rendering
    mirrors :class:`CampaignProgress` lines — label, work, compute
    seconds — with cache restores and streamed partial summaries
    called out.
    """
    kind = event.get("event", "?")
    label = event.get("label") or event.get("cell", "?")
    parts = [f"[{event.get('seq', '?'):>4}]", f"{kind:<7}", label]
    if event.get("from_cache"):
        parts.append("(cached)")
    elif kind != "partial":
        parts.append(f"({format_duration(float(event.get('elapsed', 0.0)))})")
    if kind == "partial" and event.get("summary"):
        summary = event["summary"]
        interesting = {
            k: v for k, v in summary.items()
            if k not in ("kind", "setup", "num_samples", "seed",
                         "elapsed_s", "from_cache")
        }
        if interesting:
            parts.append(
                " ".join(f"{k}={v}" for k, v in interesting.items())
            )
    return " ".join(str(p) for p in parts)


def run_header(note: str = "") -> str:
    """A one-line delimiter stamping one process run of a results file."""
    stamp = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    command = " ".join(sys.argv) or "(interactive)"
    suffix = f"  {note}" if note else ""
    return f"#### run {stamp} · {command}{suffix} ####"


class ResultsFile:
    """Append-only results record, stamped once per process run.

    The first block emitted by a process writes a :func:`run_header`
    delimiter before its content, so successive runs appending to the
    same file remain distinguishable (previously the benchmark results
    file grew forever with no indication of where one run ended and
    the next began).
    """

    def __init__(self, path: str, *, echo: bool = True) -> None:
        self.path = path
        self.echo = echo
        self._stamped = False

    def emit(self, title: str, lines: Iterable[str]) -> None:
        """Print a titled block and append it to the results file."""
        block = [f"== {title} =="] + list(lines) + [""]
        text = "\n".join(block)
        if self.echo:
            print(text)
        with open(self.path, "a") as handle:
            if not self._stamped:
                handle.write("\n" + run_header() + "\n\n")
                self._stamped = True
            handle.write(text + "\n")


def emit_block(
    title: str,
    lines: Iterable[str],
    *,
    path: Optional[str] = None,
) -> None:
    """One-shot convenience: print a block, optionally append to a file."""
    if path is not None:
        ResultsFile(path).emit(title, lines)
        return
    block: List[str] = [f"== {title} =="] + list(lines) + [""]
    print("\n".join(block))
