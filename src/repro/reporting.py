"""Shared result reporting for every experiment consumer.

One place for the three output shapes the toolkit produces:

* aligned text tables (:func:`format_table`) for CLI commands and
  benchmark summaries,
* JSON documents (:func:`render_json`) that tolerate NumPy scalars,
  arrays, bytes and dataclasses, for machine-readable campaign output,
* run-stamped results files (:class:`ResultsFile`) — append-only
  records where each process run is delimited by a header, so a file
  that accumulates across many invocations stays legible.

The benchmark harness (``benchmarks/reporting.py``) and the campaign
CLI both route through this module instead of hand-rolling printing.
"""

from __future__ import annotations

import dataclasses
import json
import sys
from datetime import datetime, timezone
from typing import Any, Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    padding: int = 2,
) -> str:
    """Render rows as a left-aligned monospace table.

    Every cell is stringified; column widths fit the longest cell.
    """
    string_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        if len(row) != len(widths):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(widths)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    gap = " " * padding

    def line(cells: Sequence[str]) -> str:
        return gap.join(
            cell.ljust(widths[i]) for i, cell in enumerate(cells)
        ).rstrip()

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in string_rows)
    return "\n".join(out)


def json_default(obj: Any) -> Any:
    """``json.dumps`` fallback covering the types experiments emit."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    if isinstance(obj, (bytes, bytearray)):
        return obj.hex()
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    # NumPy scalars and arrays, without importing numpy eagerly.
    if hasattr(obj, "tolist"):
        return obj.tolist()
    if hasattr(obj, "item"):
        return obj.item()
    raise TypeError(
        f"object of type {type(obj).__name__} is not JSON serializable"
    )


def render_json(payload: Any, *, indent: Optional[int] = 2) -> str:
    """Serialize ``payload`` to JSON, tolerating NumPy/dataclasses."""
    return json.dumps(payload, indent=indent, default=json_default)


def run_header(note: str = "") -> str:
    """A one-line delimiter stamping one process run of a results file."""
    stamp = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    command = " ".join(sys.argv) or "(interactive)"
    suffix = f"  {note}" if note else ""
    return f"#### run {stamp} · {command}{suffix} ####"


class ResultsFile:
    """Append-only results record, stamped once per process run.

    The first block emitted by a process writes a :func:`run_header`
    delimiter before its content, so successive runs appending to the
    same file remain distinguishable (previously the benchmark results
    file grew forever with no indication of where one run ended and
    the next began).
    """

    def __init__(self, path: str, *, echo: bool = True) -> None:
        self.path = path
        self.echo = echo
        self._stamped = False

    def emit(self, title: str, lines: Iterable[str]) -> None:
        """Print a titled block and append it to the results file."""
        block = [f"== {title} =="] + list(lines) + [""]
        text = "\n".join(block)
        if self.echo:
            print(text)
        with open(self.path, "a") as handle:
            if not self._stamped:
                handle.write("\n" + run_header() + "\n\n")
                self._stamped = True
            handle.write(text + "\n")


def emit_block(
    title: str,
    lines: Iterable[str],
    *,
    path: Optional[str] = None,
) -> None:
    """One-shot convenience: print a block, optionally append to a file."""
    if path is not None:
        ResultsFile(path).emit(title, lines)
        return
    block: List[str] = [f"== {title} =="] + list(lines) + [""]
    print("\n".join(block))
