"""Campaign planning: shard geometry, kernel resolution, dry runs.

Everything a campaign decides *before* executing anything lives here:
how a cell's budget is cut into shards (honouring the runner's
:class:`~repro.core.batch.ShardPolicy` while staying compatible with
legacy two-argument ``plan_shards`` hooks), which execution kernel a
cell resolves to, and the per-cell :class:`CellPlan` that ``--dry-run``
prints and a distributed dispatcher would enumerate.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.campaigns.cache import ResultCache
from repro.campaigns.registry import (
    ExperimentKind,
    KernelResolution,
    get_experiment,
)
from repro.campaigns.spec import ExperimentSpec
from repro.core.batch import ShardPlan, ShardPolicy


def plan_hook_accepts_policy(hook: Any) -> bool:
    """Whether a ``plan_shards`` hook takes the policy argument.

    Decided by signature, not by try/except TypeError: a retry-style
    probe would re-invoke the hook (doubling its work — the bernstein
    planner builds a whole case study) and mask TypeErrors raised
    *inside* a modern hook.  Unintrospectable callables are assumed
    modern.
    """
    try:
        params = list(inspect.signature(hook).parameters.values())
    except (TypeError, ValueError):
        return True
    if any(p.kind is p.VAR_POSITIONAL for p in params):
        return True
    positional = [
        p for p in params
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    return len(positional) >= 3


def resolved_kernel(
    kind: ExperimentKind, spec: ExperimentSpec
) -> "Tuple[Optional[str], Optional[str]]":
    """``(kernel, fallback_reason)`` from the kind's resolver.

    Normalizes the two resolver signatures: a bare kernel name (legacy,
    no reason travels with it) or a :class:`KernelResolution`.
    """
    if kind.resolve_kernel is None:
        return None, None
    resolved = kind.resolve_kernel(spec)
    if isinstance(resolved, KernelResolution):
        return resolved.kernel, resolved.reason
    return resolved, None


def shard_plan_for(
    spec: ExperimentSpec,
    max_shards: int,
    policy: ShardPolicy,
) -> Optional[ShardPlan]:
    """The cell's shard plan, or None to execute it whole."""
    if max_shards <= 1:
        return None
    kind = get_experiment(spec.kind)
    if not kind.shardable or spec.num_samples <= 0:
        return None
    if plan_hook_accepts_policy(kind.plan_shards):
        plan = kind.plan_shards(spec, max_shards, policy)
    else:
        # A kind registered against the pre-policy two-argument
        # hook (out-of-tree kinds): it plans its own geometry and
        # simply cannot honour a shard policy.
        plan = kind.plan_shards(spec, max_shards)
    return plan if len(plan) > 1 else None


@dataclass(frozen=True)
class CellPlan:
    """One cell's execution plan (the ``--dry-run`` unit of output)."""

    spec: ExperimentSpec
    #: A whole-cell cache entry exists: the cell will be restored.
    cached: bool
    #: The shard plan a fresh execution would use (None = runs whole).
    plan: Optional[ShardPlan] = None
    #: Shards with persisted partials (restored, not recomputed).
    shards_cached: int = 0
    #: Human-readable stopping rule for early-stop-capable kinds
    #: (None = the kind defines no ``should_stop`` hook).
    stop_rule: Optional[str] = None
    #: Shard-geometry label (the runner's :class:`ShardPolicy`) for
    #: sharded cells; None when the cell runs whole.
    geometry: Optional[str] = None
    #: The execution kernel ("vector"/"scalar") the cell resolves to
    #: — the kind's ``resolve_kernel`` verdict on the spec's ``kernel``
    #: hint; None when the kind does not report one.  Informational:
    #: kernels change throughput, never payloads.
    kernel: Optional[str] = None
    #: Machine-readable reason a requested/auto vector kernel fell back
    #: to scalar (None when in-envelope or not reported) — shown in the
    #: ``--dry-run`` kernel column and journaled as a
    #: ``kernel_fallback`` event so fallbacks are never silent.
    kernel_reason: Optional[str] = None

    @property
    def num_shards(self) -> int:
        return len(self.plan) if self.plan is not None else 1


def plan_cells(
    specs: Sequence[ExperimentSpec],
    *,
    cache: Optional[ResultCache],
    max_shards: int,
    policy: ShardPolicy,
    early_stop: bool,
) -> List[CellPlan]:
    """What a run over ``specs`` would do, without executing anything.

    For each cell: whether the whole-cell cache already covers it, the
    shard plan a fresh execution would use, and how many of those
    shards have persisted partials — the ``--dry-run`` view of a
    campaign (what a distributed run would dispatch).
    """
    plans: List[CellPlan] = []
    for spec in specs:
        kind = get_experiment(spec.kind)
        cached = cache.has(spec) if cache else False
        if cached and not early_stop and cache.is_early_stopped(spec):
            # Mirror run(): an early-stopped entry does not satisfy
            # a full-budget runner, so the cell would recompute.
            cached = False
        shard_plan = None if cached else shard_plan_for(
            spec, max_shards, policy
        )
        shards_cached = (
            cache.count_shards(spec, shard_plan)
            if cache and shard_plan is not None
            else 0
        )
        # Only advertise a stopping rule the run would apply: a
        # runner without early_stop executes the full budget, and
        # the plan must say so.
        stop_rule = None
        if early_stop and kind.should_stop is not None:
            stop_rule = (
                kind.stop_rule(spec)
                if kind.stop_rule is not None
                else "enabled"
            )
        geometry = None
        if shard_plan is not None:
            # A legacy two-argument hook planned its own geometry
            # — advertising the runner's policy for it would
            # mislabel the very ranges printed beside it.
            geometry = (
                policy.describe()
                if plan_hook_accepts_policy(kind.plan_shards)
                else "kind-defined"
            )
        kernel, kernel_reason = resolved_kernel(kind, spec)
        plans.append(CellPlan(
            spec=spec,
            cached=cached,
            plan=shard_plan,
            shards_cached=shards_cached,
            stop_rule=stop_rule,
            geometry=geometry,
            kernel=kernel,
            kernel_reason=kernel_reason,
        ))
    return plans
