"""repro.campaigns — declarative experiment orchestration.

The paper's evaluation is a grid: experiment kind x processor setup x
sample count x seed.  This package turns each grid cell into a
declarative :class:`ExperimentSpec` and executes whole grids through
one :class:`CampaignRunner` — serially or across a process pool with
bit-identical results, with an on-disk result cache so repeated sweeps
skip finished cells.

Quickstart::

    from repro.campaigns import CampaignRunner, bernstein_grid

    specs = bernstein_grid(num_samples=50_000, seed=7)
    results = CampaignRunner(workers=4).run(specs)
    for name, case in results.by_setup().items():
        print(case.report.summary_row(name))

Extending: register a new experiment kind with
:func:`register_experiment` (a module-level function, so worker
processes can import it) and build specs with ``kind=<your name>``.
"""

from repro.campaigns.grids import (
    CAMPAIGNS,
    CampaignDefinition,
    bernstein_grid,
    build_campaign,
    campaign_keys,
    contention_grid,
    missrate_grid,
    pwcet_grid,
)
from repro.campaigns.registry import (
    ExperimentKind,
    experiment_kinds,
    get_experiment,
    register_experiment,
)
from repro.campaigns.cache import CacheGCStats, ResultCache
from repro.campaigns.engine import CampaignExecution
from repro.campaigns.plan import CellPlan, plan_cells
from repro.campaigns.results import (
    CampaignResult,
    CellResult,
    ProgressEvent,
    cell_weight,
)
from repro.campaigns.runner import CampaignRunner, execute_cell
from repro.campaigns.spec import ExperimentSpec
from repro.core.batch import Shard, ShardPlan, ShardPolicy

# Built-in kinds register on import.
from repro.campaigns import experiments as _experiments  # noqa: F401

__all__ = [
    "CAMPAIGNS",
    "CacheGCStats",
    "CampaignDefinition",
    "CampaignExecution",
    "CampaignResult",
    "CampaignRunner",
    "CellPlan",
    "CellResult",
    "ExperimentKind",
    "ExperimentSpec",
    "ProgressEvent",
    "ResultCache",
    "Shard",
    "ShardPlan",
    "ShardPolicy",
    "bernstein_grid",
    "build_campaign",
    "campaign_keys",
    "cell_weight",
    "contention_grid",
    "execute_cell",
    "experiment_kinds",
    "get_experiment",
    "missrate_grid",
    "plan_cells",
    "pwcet_grid",
    "register_experiment",
]
