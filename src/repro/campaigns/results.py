"""Campaign progress and result types.

The vocabulary shared by every execution surface — the single-campaign
:class:`~repro.campaigns.runner.CampaignRunner`, the multi-tenant
:class:`~repro.service.scheduler.CampaignScheduler`, and the progress
renderers in :mod:`repro.reporting`: what one finished cell looks like
(:class:`CellResult`), what one unit of progress looks like
(:class:`ProgressEvent`), and how a whole campaign's cells are
collected (:class:`CampaignResult`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.campaigns.registry import get_experiment
from repro.campaigns.spec import ExperimentSpec
from repro.core.batch import Shard

ProgressFn = Callable[["ProgressEvent"], None]


@dataclass
class CellResult:
    """One executed (or cache-restored) cell."""

    spec: ExperimentSpec
    payload: Any
    #: Compute seconds: one timed execution for whole cells; for
    #: sharded cells the *sum* over freshly-computed shards plus the
    #: merge — i.e. total CPU cost, which exceeds wall clock when
    #: shards ran concurrently (cache restores report 0).
    elapsed: float
    from_cache: bool = False
    #: Shards the cell was split into (1 = executed whole).
    num_shards: int = 1
    #: Shards restored from persisted partials instead of recomputed.
    shards_restored: int = 0
    #: The cell's ``should_stop`` hook decided its verdict on a
    #: contiguous shard prefix; the payload covers only the samples up
    #: to that decision point (its decided-at count), and the
    #: remaining shards were cancelled, never computed.
    early_stopped: bool = False

    def summary(self) -> Dict[str, Any]:
        """Flat JSON-able record: spec identity + kind-specific fields."""
        record: Dict[str, Any] = {
            "kind": self.spec.kind,
            "setup": self.spec.setup,
            "num_samples": self.spec.num_samples,
            "seed": self.spec.seed,
            "elapsed_s": round(self.elapsed, 3),
            "from_cache": self.from_cache,
        }
        if self.early_stopped:
            record["early_stopped"] = True
        record.update(dict(self.spec.params))
        kind = get_experiment(self.spec.kind)
        record.update(kind.summarize(self.spec, self.payload))
        return record


@dataclass(frozen=True)
class ProgressEvent:
    """One completed unit of campaign progress.

    ``event`` is ``"cell"`` (a cell finished — fresh, merged, or
    cache-restored), ``"shard"`` (one shard of a sharded cell finished
    or was restored from a persisted partial), or ``"partial"`` (a
    streaming merge of the contiguous shard prefix completed so far —
    carries ``partial``/``summary``, see
    :attr:`CampaignRunner.stream_partials`).  ``work`` is the number
    of samples this event newly completes: shard events carry their
    shard's size and the final merged-cell event carries whatever the
    shards did not already report — 0 for a fully-computed sharded
    cell, the *skipped* remainder for an early-stopped one — so
    consumers summing ``work`` never double-count and always reach the
    campaign total (partial events carry 0 — they re-package work
    already counted shard by shard); cells executed whole (or restored
    from cache) carry the full cell weight.  ``elapsed`` is the unit's
    compute seconds (for a sharded cell's final event: the sum over
    its shards plus the merge — CPU cost, not wall clock).
    """

    event: str
    spec: ExperimentSpec
    elapsed: float
    work: int
    from_cache: bool = False
    shard: Optional[Shard] = None
    result: Optional[CellResult] = None
    #: "partial" events: merged payload of shards ``0..shards_done-1``.
    partial: Optional[Any] = None
    #: "partial" events: the kind's flat summary of ``partial``.
    summary: Optional[Dict[str, Any]] = None
    #: "partial" events: contiguous shards merged, out of shards_total.
    shards_done: int = 0
    shards_total: int = 0

    @property
    def label(self) -> str:
        """Human-readable unit label for progress lines."""
        if self.event == "partial":
            return (
                f"{self.spec.cell_id} "
                f"partial {self.shards_done}/{self.shards_total}"
            )
        if self.shard is not None:
            # The range doubles as a shard-size readout, so progress
            # lines show adaptive geometry (small lead, growing tail).
            return (
                f"{self.spec.cell_id} "
                f"shard {self.shard.index + 1}/{self.shard.num_shards} "
                f"[{self.shard.start},{self.shard.end})"
            )
        return self.spec.cell_id


def cell_weight(spec: ExperimentSpec) -> int:
    """Progress weight of one cell (≥ 1 even for sample-less kinds)."""
    return max(spec.num_samples, 1)


@dataclass
class CampaignResult:
    """All cells of one campaign, in spec order."""

    cells: List[CellResult] = field(default_factory=list)

    def __iter__(self) -> Iterator[CellResult]:
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def payloads(self) -> List[Any]:
        return [cell.payload for cell in self.cells]

    def by_setup(self) -> Dict[str, Any]:
        """``{setup name: payload}`` (requires unique setups)."""
        table: Dict[str, Any] = {}
        for cell in self.cells:
            name = cell.spec.setup
            if name is None:
                raise ValueError(f"cell {cell.spec.cell_id} has no setup")
            if name in table:
                raise ValueError(f"duplicate setup {name!r} in campaign")
            table[name] = cell.payload
        return table

    def summaries(self) -> List[Dict[str, Any]]:
        return [cell.summary() for cell in self.cells]

    @property
    def total_elapsed(self) -> float:
        """Sum of per-cell compute time (not wall clock when parallel)."""
        return sum(cell.elapsed for cell in self.cells)

    @property
    def cache_hits(self) -> int:
        return sum(1 for cell in self.cells if cell.from_cache)
