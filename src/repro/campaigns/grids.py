"""Named campaign grids: the paper's evaluation as spec lists.

Each grid builder turns (sample count, root seed) into the list of
:class:`ExperimentSpec` cells one figure or table of the paper needs.
The CLI's ``repro campaign`` command, ``run_all_setups`` and the
benchmarks all declare their sweeps through these builders instead of
hand-rolling loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.campaigns.spec import ExperimentSpec
from repro.core.setups import SETUP_NAMES
from repro.crypto.aes import random_key

#: spawn_key tag reserving the campaign-level key-derivation stream
#: (cells use digest-derived spawn keys, which never collide with a
#: single-word tag).
_KEY_STREAM_TAG = 0x6B657973  # "keys"


def campaign_keys(seed: int) -> Tuple[bytes, bytes]:
    """(victim, attacker) AES keys shared by every cell of a campaign.

    Derived from the root seed on a reserved ``SeedSequence`` stream,
    so the "same keys throughout" protocol of Figure 5 holds no matter
    how the cells are partitioned across workers.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(_KEY_STREAM_TAG,))
    )
    return random_key(rng), random_key(rng)


def bernstein_grid(
    num_samples: int = 300_000,
    seed: int = 2018,
    setups: Sequence[str] = SETUP_NAMES,
) -> List[ExperimentSpec]:
    """Figure 5: the attack against every setup, same keys throughout."""
    victim_key, attacker_key = campaign_keys(seed)
    return [
        ExperimentSpec(
            kind="bernstein",
            setup=name,
            num_samples=num_samples,
            seed=seed,
            params=(
                ("victim_key", victim_key.hex()),
                ("attacker_key", attacker_key.hex()),
            ),
        )
        for name in setups
    ]


def pwcet_grid(
    num_samples: int = 300,
    seed: int = 6,
    setups: Sequence[str] = SETUP_NAMES,
) -> List[ExperimentSpec]:
    """Figure 1 sweep: MBPTA collection + admission on every setup.

    Deterministic platforms repeat one execution time, so their
    admission tests are expected to fail — the grid reports that
    verdict rather than excluding them.  (The default root seed avoids
    a realisation whose Ljung-Box statistic lands in the 5% false-
    rejection tail at 300 runs — the times are i.i.d. by construction,
    but any fixed seed is one draw from the test's null distribution.)
    """
    return [
        ExperimentSpec(
            kind="pwcet", setup=name, num_samples=num_samples, seed=seed
        )
        for name in setups
    ]


#: The contention-attack kinds of the §6.2.1 generalization grid.
CONTENTION_KINDS: Tuple[str, ...] = ("prime_probe", "evict_time")


def contention_grid(
    num_samples: int = 240,
    seed: int = 2018,
    setups: Sequence[str] = SETUP_NAMES,
) -> List[ExperimentSpec]:
    """§6.2.1: Prime+Probe and Evict+Time against every setup.

    ``num_samples`` is the Prime+Probe trial budget per cell;
    Evict+Time cells get a proportionally smaller budget —
    ``max(8, num_samples // 15)``, never more than ``num_samples``
    itself (each of its trials scans every eviction target, building
    ``num_entries`` fresh caches) — so the two kinds cost roughly the
    same per cell.  Both kinds define a ``should_stop`` sequential
    test, so running this grid with early stopping decides each
    cell's leak/no-leak verdict at the smallest statistically
    sufficient trial count.
    """
    evict_trials = min(num_samples, max(8, num_samples // 15))
    return [
        ExperimentSpec(
            kind=kind,
            setup=name,
            num_samples=(
                num_samples if kind == "prime_probe" else evict_trials
            ),
            seed=seed,
        )
        for kind in CONTENTION_KINDS
        for name in setups
    ]


#: Placement policies of the §6.2.3 overheads table.
MISSRATE_POLICIES: Tuple[str, ...] = (
    "modulo",
    "xor_index",
    "random_modulo",
    "hashrp",
)

#: Workloads of the table (the ``thrash`` pathology rides separately).
MISSRATE_WORKLOADS: Tuple[str, ...] = ("stride", "reuse", "chase", "random")


def missrate_grid(
    num_samples: int = 0,
    seed: int = 0x1234,
    workloads: Sequence[str] = MISSRATE_WORKLOADS,
    policies: Sequence[str] = MISSRATE_POLICIES,
) -> List[ExperimentSpec]:
    """§6.2.3: placement-policy miss rates over the workload suite.

    ``num_samples`` is ignored (workload lengths are fixed); the
    parameter exists so every grid builder has one signature.
    """
    return [
        ExperimentSpec(
            kind="missrate",
            seed=seed,
            params=(("policy", policy), ("workload", workload)),
        )
        for workload in workloads
        for policy in policies
    ]


@dataclass(frozen=True)
class CampaignDefinition:
    """A named grid the CLI can run."""

    name: str
    description: str
    build: Callable[..., List[ExperimentSpec]]
    default_samples: int
    default_seed: int


CAMPAIGNS: Dict[str, CampaignDefinition] = {
    "bernstein": CampaignDefinition(
        name="bernstein",
        description="Figure 5: Bernstein attack vs the four setups",
        build=bernstein_grid,
        default_samples=300_000,
        default_seed=2018,
    ),
    "pwcet": CampaignDefinition(
        name="pwcet",
        description="Figure 1: MBPTA admission + pWCET per setup",
        build=pwcet_grid,
        default_samples=300,
        default_seed=6,
    ),
    "missrates": CampaignDefinition(
        name="missrates",
        description="Section 6.2.3: placement-policy miss rates",
        build=missrate_grid,
        default_samples=0,
        default_seed=0x1234,
    ),
    "contention": CampaignDefinition(
        name="contention",
        description=(
            "Section 6.2.1: Prime+Probe / Evict+Time vs the four setups"
        ),
        build=contention_grid,
        default_samples=240,
        default_seed=2018,
    ),
}


def build_campaign(
    name: str,
    num_samples: Optional[int] = None,
    seed: Optional[int] = None,
) -> List[ExperimentSpec]:
    """Build a named grid with optional sample-count/seed overrides."""
    try:
        definition = CAMPAIGNS[name]
    except KeyError:
        raise ValueError(
            f"unknown campaign {name!r}; choose from {sorted(CAMPAIGNS)}"
        ) from None
    return definition.build(
        num_samples=(
            definition.default_samples if num_samples is None else num_samples
        ),
        seed=definition.default_seed if seed is None else seed,
    )
