"""Declarative experiment cells.

An :class:`ExperimentSpec` names everything one grid cell of the
paper's evaluation needs: which experiment *kind* runs (``bernstein``,
``pwcet``, ``missrate``, ...), against which processor *setup*, at what
*sample count*, under which *root seed*, plus kind-specific *params*.

Two derived quantities make the campaign engine work:

* :meth:`ExperimentSpec.spec_hash` — a stable content hash (SHA-256 of
  the canonical JSON form) keying the on-disk result cache.  Unlike
  ``hash()`` it is identical across processes and Python versions.
* :meth:`ExperimentSpec.seed_sequence` — the cell's private
  :class:`numpy.random.SeedSequence`, derived from the root seed and a
  digest of the cell's identity via ``spawn_key``.  Cells of one
  campaign share a root seed yet draw from independent streams, and a
  cell's stream depends only on its spec — never on which worker or in
  what order it executes — so parallel runs are bit-identical to
  serial ones.  (This also fixes the old per-setup salt
  ``sum(ord(c) for c in name) % 1000``, which collided for anagram
  setup names.)
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

#: Bump to invalidate cached results when cell semantics change.
#: (2: block-keyed engine RNG streams + position-keyed pwcet run
#: seeds — pre-sharding cached payloads are not reproducible by the
#: current engine.)  The bump changes every spec_hash, so stale
#: entries are simply never looked up again; it does NOT perturb
#: seed_sequence(), which hashes the cell identity without the schema
#: version.
SPEC_SCHEMA_VERSION = 2

ParamItems = Tuple[Tuple[str, Any], ...]

#: Params that select *how* a cell executes, never *what* it computes.
#: They are excluded from the canonical identity, so neither
#: :meth:`ExperimentSpec.spec_hash` (result-cache key) nor
#: :meth:`ExperimentSpec.seed_sequence` (the cell's randomness) can be
#: perturbed by them — running with ``kernel=vector`` hits the same
#: cache entries and draws the same streams as the scalar run, which
#: is exactly the bit-identity contract the kernels are held to.
#: They still travel in :meth:`ExperimentSpec.to_doc`, so workqueue
#: workers honour them.
EXECUTION_PARAMS = frozenset({"kernel"})


def _freeze_params(params: Any) -> ParamItems:
    if params is None:
        return ()
    if isinstance(params, Mapping):
        items = params.items()
    else:
        items = tuple(params)
    frozen = tuple(sorted((str(k), v) for k, v in items))
    names = [k for k, _ in frozen]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate param names in {names}")
    return frozen


@dataclass(frozen=True)
class ExperimentSpec:
    """One cell of an experiment grid."""

    kind: str
    setup: Optional[str] = None
    num_samples: int = 0
    seed: int = 0
    params: ParamItems = field(default=())

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("kind must be a non-empty string")
        if self.num_samples < 0:
            raise ValueError("num_samples must be non-negative")
        object.__setattr__(self, "params", _freeze_params(self.params))

    # -- params ------------------------------------------------------------

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def param(self, name: str, default: Any = None) -> Any:
        return self.params_dict().get(name, default)

    def with_params(self, **updates: Any) -> "ExperimentSpec":
        merged = self.params_dict()
        merged.update(updates)
        return replace(self, params=_freeze_params(merged))

    # -- identity ----------------------------------------------------------

    def canonical(self, *, include_seed: bool = True) -> Dict[str, Any]:
        """JSON-able canonical form (sorted params, schema-versioned).

        Execution-hint params (:data:`EXECUTION_PARAMS`) are stripped:
        they may change throughput but never results, so cells that
        differ only in them are the *same* cell.
        """
        doc: Dict[str, Any] = {
            "schema": SPEC_SCHEMA_VERSION,
            "kind": self.kind,
            "setup": self.setup,
            "num_samples": self.num_samples,
            "params": [
                [k, v] for k, v in self.params if k not in EXECUTION_PARAMS
            ],
        }
        if include_seed:
            doc["seed"] = self.seed
        return doc

    def canonical_json(self, *, include_seed: bool = True) -> str:
        return json.dumps(
            self.canonical(include_seed=include_seed),
            sort_keys=True,
            separators=(",", ":"),
        )

    def spec_hash(self) -> str:
        """Stable content hash for result-cache keys."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    # -- wire format ---------------------------------------------------------

    def to_doc(self) -> Dict[str, Any]:
        """JSON-able wire form for cross-process dispatch.

        :meth:`from_doc` inverts it: the reconstructed spec has the
        same :meth:`spec_hash` and :meth:`seed_sequence`, so an
        independent worker process (see :mod:`repro.backends.workqueue`)
        reproduces the cell bit for bit from the document alone.
        Param values must therefore be JSON-representable — true for
        every built-in grid (hex strings, ints, bools).
        """
        return {
            "kind": self.kind,
            "setup": self.setup,
            "num_samples": self.num_samples,
            "seed": self.seed,
            "params": [[k, v] for k, v in self.params],
        }

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from its :meth:`to_doc` wire form."""
        return cls(
            kind=doc["kind"],
            setup=doc.get("setup"),
            num_samples=int(doc.get("num_samples", 0)),
            seed=int(doc.get("seed", 0)),
            params=tuple((k, v) for k, v in doc.get("params", [])),
        )

    @property
    def cell_id(self) -> str:
        """Short human-readable cell label.

        Includes short scalar params (e.g. ``policy=modulo``) so grid
        cells that differ only in params — the whole missrates table —
        stay distinguishable in progress output; long values (hex
        keys) are elided.
        """
        parts = [self.kind]
        if self.setup:
            parts.append(self.setup)
        if self.num_samples:
            parts.append(f"n={self.num_samples}")
        shorts = [
            f"{k}={v}"
            for k, v in self.params
            if len(str(v)) <= 16
        ]
        if shorts:
            parts.append(",".join(shorts))
        return ":".join(parts)

    # -- randomness --------------------------------------------------------

    def seed_sequence(self) -> np.random.SeedSequence:
        """The cell's private seed stream (order/worker independent).

        The root ``seed`` supplies the entropy; the ``spawn_key`` is a
        digest of the cell's identity (kind, setup, sample count,
        params — everything but the seed), so two distinct cells under
        one campaign root never share a stream, and re-running a cell
        always reproduces it.  The schema version is deliberately
        excluded: bumping it invalidates the result cache without
        changing any cell's randomness.
        """
        doc = self.canonical(include_seed=False)
        doc.pop("schema")
        digest = hashlib.sha256(
            json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
        ).digest()
        spawn_key = tuple(
            int.from_bytes(digest[i : i + 4], "big") for i in range(0, 16, 4)
        )
        return np.random.SeedSequence(entropy=self.seed, spawn_key=spawn_key)

    def rng(self) -> np.random.Generator:
        """Convenience: a fresh Generator on the cell's stream."""
        return np.random.default_rng(self.seed_sequence())
