"""The durable, content-addressed result store.

:class:`ResultCache` is a pickle-per-cell on-disk cache keyed by the
stable :meth:`~repro.campaigns.spec.ExperimentSpec.spec_hash` — a pure
content address, so *any* runner (or any tenant of the campaign
scheduler) that produces a cell's payload produces it at the same key,
and cross-run/cross-tenant dedup is free by construction.

Besides whole-cell payloads it stores *per-shard partials*
(``<hash>.shard.<i>of<k>.<start>-<end>.pkl``) so an interrupted
sharded cell resumes from its completed shards, and *early-stop
markers* (``<hash>.early``) recording that an entry holds a truncated
decided-at payload.  Every write is atomic (temp file + fsync +
rename) — a crash at any instant can leave a stray temp file, never a
truncated entry, so later runs can never be poisoned by a half-written
cache hit; concurrent writers at the same key race benignly (one
intact rename wins).

**Liveness leases** (``<hash>.lease``): a campaign actively working a
cell touches a sidecar lease file (created at admission, refreshed as
shards land, released when the cell finishes).  :meth:`ResultCache.gc`
treats a fresh lease as "hands off": it will not sweep the partials or
early-stop marker of a cell some other runner — a scheduler tenant on
another host, say — is mid-flight on, no matter how old those files'
mtimes are.  Leases are best-effort liveness, not locks: a stale lease
merely delays a sweep by one grace window, and a missing one merely
costs a recompute.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple

from repro.campaigns.spec import ExperimentSpec
from repro.common.fsio import atomic_write_bytes
from repro.core.batch import Shard, ShardPlan

#: Seconds a lease's mtime may age before gc stops honouring it.  One
#: order of magnitude above the scheduler's refresh cadence (every
#: shard completion), so only a genuinely dead campaign loses its
#: protection.
LEASE_GRACE_SECONDS = 3600.0


class ResultCache:
    """Pickle-per-cell on-disk cache keyed by the stable spec hash.

    Besides whole-cell payloads it stores *per-shard partials*
    (``<hash>.shard.<i>of<k>.<start>-<end>.pkl``) so an interrupted
    sharded cell resumes from its completed shards; partials are
    swept once the full cell payload lands.  Every write is atomic
    (temp file + fsync + rename) — a crash at any instant can leave a
    stray temp file, never a truncated entry, so later runs can never
    be poisoned by a half-written cache hit.
    """

    def __init__(self, cache_dir: str) -> None:
        self.cache_dir = cache_dir
        os.makedirs(cache_dir, exist_ok=True)

    def _path(self, spec: ExperimentSpec) -> str:
        return os.path.join(self.cache_dir, spec.spec_hash() + ".pkl")

    def _shard_prefix(self, spec: ExperimentSpec) -> str:
        return spec.spec_hash() + ".shard."

    def _shard_path(self, spec: ExperimentSpec, shard: Shard) -> str:
        return os.path.join(
            self.cache_dir,
            f"{self._shard_prefix(spec)}"
            f"{shard.index}of{shard.num_shards}."
            f"{shard.start}-{shard.end}.pkl",
        )

    def _load(self, path: str) -> Optional[Any]:
        """Unpickle ``path``, or None on any failure.

        Load failures — stale entries referencing payload classes a
        newer version renamed or moved (AttributeError/ImportError),
        truncated documents from a torn write on a shared filesystem —
        degrade to a recompute rather than aborting the campaign.  A
        file that *exists but cannot load* is additionally moved to a
        ``corrupt/`` subdirectory: left in place it would make
        ``has()`` (and every ``--dry-run`` plan) keep advertising an
        entry that silently recomputes on each run, and the broken
        bytes would be re-parsed — and re-failed — forever instead of
        being preserved once for diagnosis.
        """
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            self._quarantine(path)
            return None

    def _quarantine(self, path: str) -> None:
        """Move an unloadable cache file into ``corrupt/`` (atomic,
        best effort — quarantine trouble must never fail a run)."""
        corrupt_dir = os.path.join(self.cache_dir, "corrupt")
        try:
            os.makedirs(corrupt_dir, exist_ok=True)
            os.replace(
                path,
                os.path.join(
                    corrupt_dir,
                    f"{os.path.basename(path)}.{time.time_ns():x}",
                ),
            )
        except OSError:
            pass

    def _early_marker_path(self, spec_hash: str) -> str:
        return os.path.join(self.cache_dir, spec_hash + ".early")

    def has(self, spec: ExperimentSpec) -> bool:
        """Whether a whole-cell entry exists (without loading it)."""
        return os.path.exists(self._path(spec))

    def is_early_stopped(self, spec: ExperimentSpec) -> bool:
        """Whether the cell's entry holds a truncated decided-at
        payload — a cheap sidecar-marker check, no payload load, so
        planning stays O(cells) rather than O(cached bytes)."""
        return os.path.exists(self._early_marker_path(spec.spec_hash()))

    def get_record(
        self, spec: ExperimentSpec
    ) -> Optional[Tuple[Any, bool]]:
        """(payload, early_stopped) or None on miss/corruption.

        The early-stop marker rides beside the entry so a warm-cache
        rerun reports the restored cell exactly like the run that
        computed it — a truncated decided-at payload must not
        masquerade as a full-budget result.
        """
        payload = self._load(self._path(spec))
        if payload is None:
            return None
        return payload, self.is_early_stopped(spec)

    def get(self, spec: ExperimentSpec) -> Optional[Any]:
        """The cached payload, or None on miss/corruption."""
        return self._load(self._path(spec))

    def put(
        self,
        spec: ExperimentSpec,
        payload: Any,
        *,
        early_stopped: bool = False,
    ) -> None:
        """Store atomically so readers never see a partial pickle.

        ``early_stopped`` is recorded as a sidecar marker file, not
        inside the pickle.  Write ordering makes a crash at any
        instant safe: the marker lands *before* an early-stopped
        entry (a stray marker without its entry is inert) and is
        removed *after* a full-budget entry lands (a stale marker
        merely costs one recompute, never a truncated result served
        as a full one).
        """
        marker = self._early_marker_path(spec.spec_hash())
        if early_stopped:
            atomic_write_bytes(marker, b"")
        atomic_write_bytes(
            self._path(spec),
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )
        if not early_stopped:
            try:
                os.unlink(marker)
            except FileNotFoundError:
                pass

    # -- per-shard partials --------------------------------------------------

    def put_shard(
        self, spec: ExperimentSpec, shard: Shard, payload: Any
    ) -> None:
        """Persist one shard's partial payload (atomic, like put)."""
        atomic_write_bytes(
            self._shard_path(spec, shard),
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def get_shards(
        self, spec: ExperimentSpec, plan: ShardPlan
    ) -> Dict[int, Any]:
        """``{shard index: partial payload}`` for the plan's shards.

        Only exact matches count: a partial is keyed by its full
        identity (index, shard count, sample range), so partials from
        a run with a different ``max_shards_per_cell`` are ignored
        rather than mis-merged (they are swept when the cell
        finishes).  Unreadable partials degrade to recomputes.
        """
        restored: Dict[int, Any] = {}
        for shard in plan:
            payload = self._load(self._shard_path(spec, shard))
            if payload is not None:
                restored[shard.index] = payload
        return restored

    def count_shards(self, spec: ExperimentSpec, plan: ShardPlan) -> int:
        """How many of the plan's shards have persisted partials."""
        return sum(
            1 for shard in plan
            if os.path.exists(self._shard_path(spec, shard))
        )

    def clear_shards(self, spec: ExperimentSpec) -> None:
        """Sweep every persisted partial of the cell (any plan)."""
        prefix = self._shard_prefix(spec)
        for name in os.listdir(self.cache_dir):
            if name.startswith(prefix):
                try:
                    os.unlink(os.path.join(self.cache_dir, name))
                except FileNotFoundError:
                    pass

    # -- liveness leases -----------------------------------------------------

    def _lease_path(self, spec_hash: str) -> str:
        return os.path.join(self.cache_dir, spec_hash + ".lease")

    def touch_lease(self, spec: ExperimentSpec) -> None:
        """Mark the cell live: gc must not sweep its files.

        Called at cell admission and refreshed as shards land, so the
        lease mtime tracks actual campaign progress.  Best effort —
        lease trouble (read-only cache, races with a concurrent gc)
        must never fail a run.
        """
        path = self._lease_path(spec.spec_hash())
        try:
            os.utime(path, None)
        except FileNotFoundError:
            try:
                with open(path, "ab"):
                    pass
            except OSError:
                pass
        except OSError:
            pass

    def release_lease(self, spec: ExperimentSpec) -> None:
        """Drop the cell's liveness lease (the cell finished)."""
        try:
            os.unlink(self._lease_path(spec.spec_hash()))
        except FileNotFoundError:
            pass
        except OSError:
            pass

    def _live_hashes(self, lease_grace: float) -> Set[str]:
        """Spec hashes with a fresh lease (gc's hands-off set)."""
        live: Set[str] = set()
        cutoff = time.time() - lease_grace
        for name in os.listdir(self.cache_dir):
            if not name.endswith(".lease"):
                continue
            try:
                if os.stat(os.path.join(self.cache_dir, name)).st_mtime \
                        >= cutoff:
                    live.add(name[: -len(".lease")])
            except FileNotFoundError:
                pass
        return live

    # -- garbage collection --------------------------------------------------

    def gc(
        self,
        max_age_days: float,
        *,
        lease_grace: float = LEASE_GRACE_SECONDS,
    ) -> "CacheGCStats":
        """Sweep stale entries from a long-lived shared cache.

        Removes whole-cell entries and shard partials whose mtime is
        older than ``max_age_days`` days, plus *orphaned* partials —
        shards whose *full-budget* whole-cell entry already landed
        (normally swept at merge time, but a crash between ``put`` and
        ``clear_shards`` can leave them behind).  Partials living
        beside an early-stopped entry are **not** orphans: a
        full-budget run ignores that entry and may be mid-resume on
        exactly those partials.  Age-based only, by design: the cache
        is content-addressed, so there is no LRU bookkeeping to
        maintain, and deleting a live entry merely costs a recompute.

        Cells with a *fresh liveness lease* (touched within
        ``lease_grace`` seconds — see :meth:`touch_lease`) are skipped
        entirely: a campaign another runner or scheduler tenant is
        actively working may be mid-resume on exactly the partials and
        markers an age-only sweep would take, and sweeping them would
        silently convert its resume into a recompute.  Stale lease
        files themselves are swept as litter.
        """
        if max_age_days < 0:
            raise ValueError("max_age_days must be non-negative")
        cutoff = time.time() - max_age_days * 86400.0
        removed_cells = removed_partials = freed = 0
        names = sorted(os.listdir(self.cache_dir))
        live = self._live_hashes(lease_grace)
        for name in names:
            if not name.endswith(".pkl"):
                continue
            path = os.path.join(self.cache_dir, name)
            try:
                stat = os.stat(path)
            except FileNotFoundError:
                continue
            is_partial = ".shard." in name
            if is_partial:
                spec_hash = name.split(".shard.", 1)[0]
            else:
                spec_hash = name[: -len(".pkl")]
            if spec_hash in live:
                continue
            orphaned = (
                is_partial
                and os.path.exists(
                    os.path.join(self.cache_dir, spec_hash + ".pkl")
                )
                and not os.path.exists(self._early_marker_path(spec_hash))
            )
            if stat.st_mtime >= cutoff and not orphaned:
                continue
            try:
                os.unlink(path)
            except FileNotFoundError:
                continue
            freed += stat.st_size
            if is_partial:
                removed_partials += 1
            else:
                removed_cells += 1
                # The marker follows its entry out.
                try:
                    os.unlink(self._early_marker_path(spec_hash))
                except FileNotFoundError:
                    pass
        # Sweep markers whose entry is gone.  A marker is removed with
        # its entry above (the two are GC'd as a unit); an *orphaned*
        # marker — entry unlinked by a crashed sweep, a manual delete,
        # or a put() that died between marker and entry — is not just
        # litter: while it lingers, is_early_stopped() keeps answering
        # True for a spec hash with nothing cached, forcing every
        # full-budget run at that hash into a spurious recompute.  So
        # orphans are swept as soon as they outlive the put() grace
        # window (marker lands moments before its entry; a concurrent
        # gc must not unlink it inside that window, or an entry landing
        # without its marker would serve a truncated payload as a full
        # result) — NOT kept for max_age_days like real entries.
        marker_cutoff = time.time() - 300.0
        for name in names:
            if not name.endswith(".early"):
                continue
            if name[: -len(".early")] in live:
                continue
            entry = name[: -len(".early")] + ".pkl"
            if os.path.exists(os.path.join(self.cache_dir, entry)):
                continue
            path = os.path.join(self.cache_dir, name)
            try:
                if os.stat(path).st_mtime < marker_cutoff:
                    os.unlink(path)
            except FileNotFoundError:
                pass
        # Stale leases are litter from crashed campaigns: once past
        # the grace window they protect nothing and are swept so the
        # live-set scan stays O(active cells).
        lease_cutoff = time.time() - lease_grace
        for name in names:
            if not name.endswith(".lease"):
                continue
            path = os.path.join(self.cache_dir, name)
            try:
                if os.stat(path).st_mtime < lease_cutoff:
                    os.unlink(path)
            except FileNotFoundError:
                pass
        return CacheGCStats(
            removed_cells=removed_cells,
            removed_partials=removed_partials,
            freed_bytes=freed,
        )


@dataclass(frozen=True)
class CacheGCStats:
    """What one :meth:`ResultCache.gc` sweep removed."""

    removed_cells: int
    removed_partials: int
    freed_bytes: int
