"""The per-campaign execution state machine.

:class:`CampaignExecution` is one campaign's complete cell
book-keeping — cache restore, shard merge, streaming partials, early
stopping, progress and telemetry — with the *backend driving* factored
out.  The single-campaign :class:`~repro.campaigns.runner.CampaignRunner`
submits its units to one backend and feeds completions back; the
multi-tenant :class:`~repro.service.scheduler.CampaignScheduler`
interleaves the units of many executions over one shared backend and
routes each completion to every execution interested in it.  Either
way the execution sees the same sequence of unit results, so payloads
are bit-identical across all driving styles (and all completion
orders — every merge is keyed by shard index, never arrival order).

The driving protocol::

    execution.begin()                # cache restores, settles, plans
    for unit in execution.take_units():
        backend.submit(unit)
        execution.note_queued(unit)
    for result in backend.completions():
        cancel = execution.on_result(result)   # unit ids to cancel
        if cancel:
            backend.cancel_units(cancel)
    result = execution.finish()      # asserts all cells settled
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)
from collections import deque

from repro.campaigns.cache import ResultCache
from repro.campaigns.plan import resolved_kernel, shard_plan_for
from repro.campaigns.registry import ExperimentKind, get_experiment
from repro.campaigns.results import (
    CampaignResult,
    CellResult,
    ProgressEvent,
    ProgressFn,
    cell_weight,
)
from repro.campaigns.spec import ExperimentSpec
from repro.core.batch import Shard, ShardPlan, ShardPolicy

if TYPE_CHECKING:  # runtime import is deferred: backends import us
    from repro.backends.base import WorkUnit


@dataclass
class CellState:
    """Book-keeping for one not-yet-finished cell."""

    index: int
    spec: ExperimentSpec
    kind: ExperimentKind
    plan: Optional[ShardPlan] = None
    parts: Dict[int, Any] = field(default_factory=dict)
    elapsed: float = 0.0
    restored: int = 0
    #: Shards covered by the last merged contiguous prefix (streamed
    #: and/or evaluated for early stopping).
    partial_done: int = 0
    #: Sample work already reported through shard progress events.
    reported_work: int = 0
    #: unit_id per shard index (cancellation bookkeeping).
    unit_ids: Dict[int, str] = field(default_factory=dict)
    #: The cell finished (merged, restored or early-stopped); any
    #: straggler shard results still arriving are discarded.
    done: bool = False


class CampaignExecution:
    """One campaign's cells, driven to completion by unit results.

    Parameters mirror :class:`~repro.campaigns.runner.CampaignRunner`
    (which delegates here) plus the multi-campaign hooks:

    unit_prefix:
        Prepended to every unit id — the scheduler namespaces each
        campaign's units (``{campaign_id}.{stem}``) so many campaigns'
        units coexist in one work queue / coordinator without
        collisions.  Filename-safe by construction (dots, dashes).
    labels:
        Extra fields merged into every telemetry event this execution
        emits — the scheduler attaches ``campaign`` and ``tenant`` so
        multi-tenant journals stay attributable per event.
    """

    def __init__(
        self,
        specs: Sequence[ExperimentSpec],
        *,
        cache: Optional[ResultCache] = None,
        max_shards_per_cell: int = 1,
        shard_policy: Optional[ShardPolicy] = None,
        stream_partials: bool = False,
        early_stop: bool = False,
        progress: Optional[ProgressFn] = None,
        telemetry=None,
        backend_label: str = "serial",
        unit_prefix: str = "",
        labels: Optional[Mapping[str, Any]] = None,
    ) -> None:
        if max_shards_per_cell < 1:
            raise ValueError("max_shards_per_cell must be >= 1")
        self.specs = list(specs)
        self.cache = cache
        self.max_shards_per_cell = max_shards_per_cell
        self.shard_policy = (
            shard_policy if shard_policy is not None else ShardPolicy()
        )
        self.stream_partials = stream_partials
        self.early_stop = early_stop
        self.progress = progress
        self.telemetry = telemetry
        self.backend_label = backend_label
        self.unit_prefix = unit_prefix
        self.labels = dict(labels) if labels else {}
        self._results: List[Optional[CellResult]] = [None] * len(self.specs)
        self._units: Deque["WorkUnit"] = deque()
        self._by_id: Dict[str, Tuple[CellState, Optional[Shard]]] = {}
        #: Wall-clock submit time per outstanding unit id — the
        #: queued→running phase split in unit_done spans.
        self._queued_at: Dict[str, float] = {}
        self._started: Optional[float] = None
        self._begun = False

    # -- telemetry ---------------------------------------------------------

    def _emit(self, type_: str, **fields: Any) -> None:
        """Emit one telemetry event (no-op without a sink)."""
        if self.telemetry is None:
            return
        from repro.telemetry.events import make_event

        if self.labels:
            merged = dict(self.labels)
            merged.update(fields)
            fields = merged
        self.telemetry.emit(make_event(type_, **fields))

    def _report(self, event: ProgressEvent) -> None:
        if self.progress is not None:
            self.progress(event)

    # -- lifecycle ---------------------------------------------------------

    @property
    def total_work(self) -> int:
        return sum(cell_weight(spec) for spec in self.specs)

    @property
    def done(self) -> bool:
        """All cells settled (results in place for every spec)."""
        return all(result is not None for result in self._results)

    def begin(self) -> None:
        """Validate, restore from cache, settle, and plan units.

        After this, :meth:`take_units` (or :meth:`next_unit`) yields
        the units a backend must execute; an all-cached campaign
        yields none and is immediately :attr:`done`.
        """
        assert not self._begun, "begin() called twice"
        self._begun = True
        # Validate kinds up front: a typo should fail before any
        # (possibly hours-long) cell executes.
        for spec in self.specs:
            get_experiment(spec.kind)
        self._started = time.monotonic()
        self._emit(
            "campaign_start",
            cells=len(self.specs),
            backend=self.backend_label,
            total_work=self.total_work,
        )
        pending: List[CellState] = []
        for index, spec in enumerate(self.specs):
            cached = None
            if self.cache is not None and (
                self.early_stop or not self.cache.is_early_stopped(spec)
            ):
                # An early-stopped entry holds a truncated decided-at
                # payload; a runner that did not opt into early
                # stopping promised the full budget, so it recomputes
                # (and overwrites) instead of loading it.
                cached = self.cache.get_record(spec)
            if cached is not None:
                payload, was_early_stopped = cached
                self._results[index] = CellResult(
                    spec=spec, payload=payload, elapsed=0.0,
                    from_cache=True, early_stopped=was_early_stopped,
                )
                self._emit(
                    "cache_hit", cell=spec.cell_id, kind=spec.kind,
                )
                self._report(ProgressEvent(
                    event="cell",
                    spec=spec,
                    elapsed=0.0,
                    work=cell_weight(spec),
                    from_cache=True,
                    result=self._results[index],
                ))
                continue
            cell = CellState(
                index=index,
                spec=spec,
                kind=get_experiment(spec.kind),
                plan=shard_plan_for(
                    spec, self.max_shards_per_cell, self.shard_policy
                ),
            )
            if self.cache is not None:
                # Liveness lease: gc must not sweep this cell's
                # partials or markers while the campaign works it.
                self.cache.touch_lease(spec)
            if self.telemetry is not None:
                # Resolve only when a sink listens: probing the vector
                # envelope builds a template cache, and the default
                # telemetry=None path stays zero-cost.
                kernel, reason = resolved_kernel(cell.kind, spec)
                if reason is not None:
                    self._emit(
                        "kernel_fallback",
                        cell=spec.cell_id,
                        kernel=kernel,
                        reason=reason,
                    )
            self._restore_shards(cell)
            if cell.plan is not None and len(cell.parts) == len(cell.plan):
                # Every shard was persisted before the interruption;
                # only the merge is left.
                self._finish_cell(cell, self._merge(cell))
            else:
                pending.append(cell)
        if pending and self.early_stop:
            # Shard partials restored from the cache may already carry
            # a decidable prefix — settle those cells before
            # dispatching any of their remaining shards.
            for cell in pending:
                self._after_prefix_grew(cell)
            pending = [cell for cell in pending if not cell.done]
        self._make_units(pending)

    def finish(self) -> CampaignResult:
        """Close the campaign (all cells must be settled)."""
        assert self._begun, "finish() before begin()"
        assert self.done, "finish() with unsettled cells"
        self._queued_at.clear()
        self._emit(
            "campaign_end",
            cells=len(self.specs),
            elapsed=(
                time.monotonic() - self._started
                if self._started is not None else 0.0
            ),
        )
        return CampaignResult(
            cells=[r for r in self._results if r is not None]
        )

    # -- unit plumbing -----------------------------------------------------

    def _make_units(self, pending: Sequence[CellState]) -> None:
        from repro.backends.base import WorkUnit

        for cell in pending:
            stem = (
                f"{self.unit_prefix}"
                f"c{cell.index:04d}-{cell.spec.spec_hash()[:12]}"
            )
            if cell.plan is None:
                unit = WorkUnit(unit_id=stem, spec=cell.spec)
                self._by_id[unit.unit_id] = (cell, None)
                self._units.append(unit)
                continue
            for shard in cell.plan:
                unit_id = f"{stem}.{shard.start}-{shard.end}"
                cell.unit_ids[shard.index] = unit_id
                if shard.index in cell.parts:
                    continue  # restored from a persisted partial
                unit = WorkUnit(
                    unit_id=unit_id,
                    spec=cell.spec,
                    shard=shard,
                )
                self._by_id[unit_id] = (cell, shard)
                self._units.append(unit)

    def take_units(self) -> List["WorkUnit"]:
        """All not-yet-dispatched units (drains the internal queue)."""
        units = list(self._units)
        self._units.clear()
        return units

    def next_unit(self) -> Optional["WorkUnit"]:
        """Pop one not-yet-dispatched unit (scheduler-style driving)."""
        return self._units.popleft() if self._units else None

    @property
    def units_pending(self) -> int:
        """Not-yet-dispatched units still queued in the execution."""
        return len(self._units)

    def note_queued(self, unit: "WorkUnit") -> None:
        """Record one unit's submission (telemetry span start)."""
        if self.telemetry is None:
            return
        cell, _ = self._by_id[unit.unit_id]
        self._queued_at[unit.unit_id] = time.time()
        self._emit(
            "unit_queued",
            unit=unit.unit_id,
            cell=cell.spec.cell_id,
            kind=cell.spec.kind,
        )

    # -- unit completion ---------------------------------------------------

    def on_result(self, result: Any) -> List[str]:
        """Feed one completed unit; returns unit ids to cancel.

        The returned ids are shards made obsolete by an early-stop
        decision — the driver forwards them to its backend's
        ``cancel_units`` (the scheduler first drops its own interest
        and cancels on the backend only when no other campaign still
        wants the unit's content).
        """
        entry = self._by_id.get(result.unit.unit_id)
        if entry is None:
            return []
        cell, shard = entry
        if self.telemetry is not None:
            self._emit_unit_done(cell, result)
        if cell.done:
            # A straggler of an early-stopped cell (its unit was
            # already running when the cancel landed).
            return []
        if shard is None:
            cell.elapsed = result.elapsed
            self._finish_cell(cell, result.payload)
            return []
        self._shard_done(cell, shard, result.payload, result.elapsed)
        if len(cell.parts) == len(cell.plan):
            self._finish_cell(cell, self._merge(cell))
            return []
        return self._after_prefix_grew(cell)

    def _emit_unit_done(self, cell: CellState, result: Any) -> None:
        """Close one unit's span: phase split + worker timings.

        ``queue_wait`` is submit-to-execution-start, from the worker's
        own wall clock when it stamped timings (clamped at 0 against
        cross-host clock skew); the remaining fields ride straight
        from the result doc.
        """
        unit_id = result.unit.unit_id
        queued = self._queued_at.pop(unit_id, None)
        queue_wait = None
        timings = result.timings
        if queued is not None:
            started = (timings or {}).get("started")
            reference = started if started is not None else time.time()
            queue_wait = max(0.0, reference - queued)
        fields: Dict[str, Any] = dict(
            unit=unit_id,
            cell=cell.spec.cell_id,
            kind=cell.spec.kind,
            attempts=getattr(result, "attempts", 1),
            elapsed=result.elapsed,
        )
        if getattr(result, "worker", None) is not None:
            fields["worker"] = result.worker
        if queue_wait is not None:
            fields["queue_wait"] = round(queue_wait, 6)
        if timings is not None:
            fields["timings"] = dict(timings)
        self._emit("unit_done", **fields)

    def _merge(self, cell: CellState) -> Any:
        """Merge a sharded cell's partials (shard order, not completion
        order) into the payload an unsharded run would produce."""
        assert cell.plan is not None
        start = time.perf_counter()
        parts = [cell.parts[i] for i in range(len(cell.plan))]
        payload = cell.kind.merge_shards(cell.spec, parts)
        seconds = time.perf_counter() - start
        cell.elapsed += seconds
        self._emit(
            "merge",
            cell=cell.spec.cell_id,
            shards=len(parts),
            seconds=round(seconds, 6),
        )
        return payload

    def _finish_cell(
        self,
        cell: CellState,
        payload: Any,
        *,
        early_stopped: bool = False,
    ) -> None:
        cell.done = True
        if self.cache:
            self.cache.put(cell.spec, payload, early_stopped=early_stopped)
            if cell.plan is not None and not early_stopped:
                # The full-budget entry supersedes the partials.  An
                # early-stopped cell keeps its persisted shards: a
                # later full-budget run rejects the truncated entry
                # and resumes from exactly those partials instead of
                # recomputing them (gc's orphan rule protects them
                # for the same reason).
                self.cache.clear_shards(cell.spec)
            self.cache.release_lease(cell.spec)
        num_shards = len(cell.plan) if cell.plan else 1
        self._results[cell.index] = CellResult(
            spec=cell.spec,
            payload=payload,
            elapsed=cell.elapsed,
            num_shards=num_shards,
            shards_restored=cell.restored,
            early_stopped=early_stopped,
        )
        self._emit(
            "cell_done",
            cell=cell.spec.cell_id,
            kind=cell.spec.kind,
            elapsed=round(cell.elapsed, 6),
            shards=num_shards,
            early_stopped=early_stopped,
        )
        # Sharded cells already reported their work shard by shard;
        # the cell event carries only what they did not — 0 normally,
        # the cancelled remainder when the cell stopped early.
        if cell.plan is None:
            work = cell_weight(cell.spec)
        else:
            work = max(0, cell_weight(cell.spec) - cell.reported_work)
        self._report(ProgressEvent(
            event="cell",
            spec=cell.spec,
            elapsed=cell.elapsed,
            work=work,
            result=self._results[cell.index],
        ))

    def _restore_shards(self, cell: CellState) -> None:
        """Adopt persisted shard partials from an interrupted run."""
        if self.cache is None or cell.plan is None:
            return
        restored_before = cell.restored
        for index, payload in sorted(
            self.cache.get_shards(cell.spec, cell.plan).items()
        ):
            cell.parts[index] = payload
            cell.restored += 1
            cell.reported_work += cell.plan[index].num_samples
            self._report(ProgressEvent(
                event="shard",
                spec=cell.spec,
                elapsed=0.0,
                work=cell.plan[index].num_samples,
                from_cache=True,
                shard=cell.plan[index],
            ))
        if cell.restored > restored_before:
            self._emit(
                "partial_restore",
                cell=cell.spec.cell_id,
                shards=cell.restored - restored_before,
                of=len(cell.plan),
            )

    def _shard_done(
        self, cell: CellState, shard: Shard, payload: Any, elapsed: float
    ) -> None:
        cell.parts[shard.index] = payload
        cell.elapsed += elapsed
        cell.reported_work += shard.num_samples
        # Persist before reporting: once an observer saw the shard
        # complete, a crash must not lose it.
        if self.cache is not None:
            self.cache.put_shard(cell.spec, shard, payload)
            self.cache.touch_lease(cell.spec)
        self._report(ProgressEvent(
            event="shard",
            spec=cell.spec,
            elapsed=elapsed,
            work=shard.num_samples,
            shard=shard,
        ))

    def _after_prefix_grew(self, cell: CellState) -> List[str]:
        """React to a grown contiguous shard prefix: stream the merged
        preview and/or rule on early stopping.  One merge serves both;
        merge failures are skippable for previews but disable stopping
        too (an undecidable prefix is simply not decided).  Returns
        the unit ids an early-stop decision makes obsolete."""
        if cell.plan is None:
            return []
        wants_stream = (
            self.stream_partials and cell.kind.merge_partial is not None
        )
        wants_stop = (
            self.early_stop and cell.kind.should_stop is not None
        )
        if not (wants_stream or wants_stop):
            return []
        done = 0
        while done in cell.parts:
            done += 1
        if done <= cell.partial_done or done >= len(cell.plan):
            # No new contiguous prefix (or the cell is about to merge
            # for real anyway).
            return []
        cell.partial_done = done
        try:
            payload = cell.kind.merge_partial(
                cell.spec, [cell.parts[i] for i in range(done)]
            )
        except Exception:
            return []  # an unmergeable prefix is simply not ruled on
        if wants_stream:
            # A failing summary only skips the preview line — it must
            # not block the stopping decision, which needs nothing but
            # the merged payload.
            try:
                summary = cell.kind.summarize(cell.spec, payload)
            except Exception:
                pass
            else:
                self._report(ProgressEvent(
                    event="partial",
                    spec=cell.spec,
                    elapsed=0.0,
                    work=0,
                    partial=payload,
                    summary=summary,
                    shards_done=done,
                    shards_total=len(cell.plan),
                ))
        if not wants_stop:
            return []
        try:
            stop = bool(cell.kind.should_stop(cell.spec, payload))
        except Exception:
            return []  # an erroring rule must never fail the campaign
        if not stop:
            return []
        remaining = [
            unit_id
            for index, unit_id in cell.unit_ids.items()
            if index not in cell.parts
        ]
        # decided_at: the trial count the verdict was reached at — the
        # end of the merged contiguous prefix the rule fired on.
        self._emit(
            "early_stop",
            cell=cell.spec.cell_id,
            decided_at=cell.plan[done - 1].end,
            cancelled=len(remaining),
        )
        self._finish_cell(cell, payload, early_stopped=True)
        return remaining
