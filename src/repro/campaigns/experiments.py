"""Built-in experiment kinds: the paper's evaluation grid as cells.

Each kind is a module-level function from :class:`ExperimentSpec` to a
picklable payload, registered under a stable name:

``bernstein``
    The full Bernstein case study (§6.1-§6.2.1) on one setup: collect
    both parties' samples, run the correlation attack, grade the key
    space.  Payload: :class:`repro.core.simulator.CaseStudyResult`.
``timing_samples``
    One party's raw :class:`TimingSamples` on a setup (the Figure 4
    per-value timing-variation substrate).
``pwcet``
    Execution times of the synthetic multi-page task over many runs
    (fresh seed per run, the MBPTA analysis-phase protocol) plus the
    EVT admission verdicts and pWCET curve (Figure 1).
``missrate``
    Miss rate of one placement policy on one synthetic workload
    (§6.2.3 overheads).
``prime_probe`` / ``evict_time``
    The §6.2.1 generalization: a contention attack's secret-guessing
    accuracy against one cache configuration, as independent trials
    (``num_samples`` = trial budget).  Payload:
    :class:`repro.attack.prime_probe.PrimeProbeResult` /
    :class:`repro.attack.evict_time.EvictTimeResult`.  Both kinds are
    shardable down to single trials (every trial draws from a
    position-keyed stream) and define a ``should_stop`` hook — a
    sequential probability ratio test on accuracy vs. chance — so a
    runner with ``early_stop=True`` cancels a cell's remaining trial
    shards once the leak/no-leak verdict is decided.

All randomness is drawn from the spec's private
:meth:`~repro.campaigns.spec.ExperimentSpec.seed_sequence`, so results
do not depend on execution order or worker placement.

The sample-range kinds (``bernstein``, ``timing_samples``, ``pwcet``,
``prime_probe``, ``evict_time``) are additionally *shardable*: their
``plan_shards``/``run_shard``/``merge_shards`` hooks let
:class:`~repro.campaigns.runner.CampaignRunner` fan one big cell out
across the process pool (``max_shards_per_cell``) and merge the
partial payloads bit-identically to an unsharded run — each shard
worker reconstructs the cell's state from the spec alone, so no
coordination or shared mutable state is involved.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence

import numpy as np

from repro.attack.trials import KERNEL_CHOICES
from repro.campaigns.registry import KernelResolution, register_experiment
from repro.campaigns.spec import ExperimentSpec
from repro.cache.core import ARM920T_L1_GEOMETRY, SetAssociativeCache
from repro.cache.placement import make_placement
from repro.cache.replacement import make_replacement
from repro.core.batch import (
    AESTimingEngine,
    EngineConfig,
    Shard,
    ShardPlan,
    ShardPolicy,
    ShardSamples,
    TimingSamples,
    merge_shard_samples,
)
from repro.core.setups import (
    SetupConfig,
    make_setup,
    make_setup_hierarchy,
    setup_hierarchy_config,
)
from repro.mbpta.analysis import MBPTAAnalysis, MBPTAReport
from repro.workloads.generators import (
    matrix_walk_trace,
    multi_page_task_trace,
    pointer_chase_trace,
    random_trace,
    reuse_trace,
    stride_trace,
)
from repro.workloads.interference import (
    BackgroundWorkload,
    windowed_background,
)

# -- shared helpers ---------------------------------------------------------

#: SetupConfig fields a spec may override (the ablation axes).
SETUP_OVERRIDE_FIELDS = (
    "l1_replacement",
    "shared_seed_between_parties",
    "reseed_every",
)


def resolve_setup(spec: ExperimentSpec) -> SetupConfig:
    """The spec's setup with any ablation overrides applied."""
    if spec.setup is None:
        raise ValueError(f"experiment {spec.kind!r} needs a setup")
    setup = make_setup(spec.setup)
    params = spec.params_dict()
    overrides: Dict[str, Any] = {
        name: params[name]
        for name in SETUP_OVERRIDE_FIELDS
        if name in params
    }
    variant = params.get("variant")
    if overrides or variant:
        setup = dataclasses.replace(
            setup, name=variant or setup.name, **overrides
        )
    return setup


def resolve_background(spec: ExperimentSpec) -> Optional[BackgroundWorkload]:
    """An ablation background, or None for the case-study default."""
    window = spec.param("background_window_lines")
    if window is None:
        return None
    return windowed_background(int(window))


def _key_param(spec: ExperimentSpec, name: str) -> Optional[bytes]:
    value = spec.param(name)
    if value is None:
        return None
    key = bytes.fromhex(value)
    if len(key) != 16:
        raise ValueError(f"{name} must be 16 bytes, got {len(key)}")
    return key


def _spec_kernel(spec: ExperimentSpec) -> str:
    """The cell's requested execution kernel (an execution hint).

    ``kernel`` is an :data:`~repro.campaigns.spec.EXECUTION_PARAMS`
    member: it selects how the cell computes, never what — results are
    bit-identical across kernels, and the param is excluded from the
    spec's identity (cache key and seed stream).
    """
    kernel = str(spec.param("kernel", "auto"))
    if kernel not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown kernel {kernel!r}; choose from {KERNEL_CHOICES}"
        )
    return kernel


def resolve_engine_kernel(spec: ExperimentSpec) -> str:
    """The AES timing engine is natively vectorized (NumPy batches,
    no scalar path), so every engine-backed cell runs "vector"
    regardless of the hint — which is still validated so ``--dry-run``
    rejects a typo before dispatch."""
    _spec_kernel(spec)
    return "vector"


def resolve_pwcet_kernel(spec: ExperimentSpec) -> KernelResolution:
    """pwcet cells batch over runs when the setup's hierarchy config is
    inside the trace-replay envelope (vectorizable placements, fixed or
    per-run-restarting replacement streams)."""
    if _spec_kernel(spec) == "scalar":
        return KernelResolution("scalar")
    from repro.kernels.replay import hierarchy_support

    reason = hierarchy_support(setup_hierarchy_config(spec.setup))
    if reason is None:
        return KernelResolution("vector")
    return KernelResolution("scalar", reason)


def resolve_missrate_kernel(spec: ExperimentSpec) -> KernelResolution:
    """missrate cells replay set-parallel when the cache's per-set
    state is independent across sets; random replacement's globally
    sequenced draws keep it on the scalar path, with the reason
    recorded."""
    if _spec_kernel(spec) == "scalar":
        return KernelResolution("scalar")
    from repro.kernels.replay import missrate_support

    reason = missrate_support(_missrate_cache(spec))
    if reason is None:
        return KernelResolution("vector")
    return KernelResolution("scalar", reason)


# -- bernstein --------------------------------------------------------------

def _summarize_bernstein(spec: ExperimentSpec, payload: Any) -> Dict[str, Any]:
    report = payload.report
    leaking = sorted(
        o.byte_index for o in report.outcomes if o.num_surviving < 256
    )
    return {
        "bits_determined": report.bits_determined,
        "remaining_key_space_log2": round(
            report.remaining_key_space_log2, 2
        ),
        "brute_force_speedup_log2": round(
            report.brute_force_speedup_log2, 2
        ),
        "leaking_bytes": leaking,
        "key_fully_protected": report.key_fully_protected,
    }


def _bernstein_study(spec: ExperimentSpec):
    """The cell's case study, reconstructed identically anywhere.

    Every shard worker (and the merge step) builds the same object
    from the spec alone: same engine entropy root, same resolved keys.
    """
    from repro.core.simulator import BernsteinCaseStudy

    return BernsteinCaseStudy(
        resolve_setup(spec),
        num_samples=spec.num_samples,
        background=resolve_background(spec),
        engine_config=EngineConfig(kernel=_spec_kernel(spec)),
        rng_seed=spec.seed_sequence(),
    )


def _engine_campaign_seed(spec: ExperimentSpec) -> int:
    return int(spec.param("engine_campaign_seed", 0xC0DE))


def plan_bernstein_shards(
    spec: ExperimentSpec,
    max_shards: int,
    policy: Optional[ShardPolicy] = None,
) -> ShardPlan:
    study = _bernstein_study(spec)
    return study.engine.shard_plan(spec.num_samples, max_shards, policy)


def run_bernstein_shard(
    spec: ExperimentSpec, shard: Shard
) -> Dict[str, ShardSamples]:
    """Both parties' sample slice for one shard."""
    study = _bernstein_study(spec)
    victim_key, attacker_key = study.resolve_keys(
        _key_param(spec, "victim_key"), _key_param(spec, "attacker_key")
    )
    campaign_seed = _engine_campaign_seed(spec)
    return {
        "attacker": study.engine.collect_shard(
            attacker_key, spec.num_samples, shard,
            party="attacker", campaign_seed=campaign_seed,
        ),
        "victim": study.engine.collect_shard(
            victim_key, spec.num_samples, shard,
            party="victim", campaign_seed=campaign_seed,
        ),
    }


def merge_bernstein_shards(
    spec: ExperimentSpec, parts: Sequence[Dict[str, ShardSamples]]
):
    study = _bernstein_study(spec)
    victim_key, _ = study.resolve_keys(
        _key_param(spec, "victim_key"), _key_param(spec, "attacker_key")
    )
    victim_samples = merge_shard_samples([p["victim"] for p in parts])
    attacker_samples = merge_shard_samples([p["attacker"] for p in parts])
    return study.attack(victim_samples, attacker_samples, victim_key)


def merge_bernstein_partial(
    spec: ExperimentSpec, parts: Sequence[Dict[str, ShardSamples]]
):
    """The correlation attack over a contiguous prefix of the budget —
    an incremental Figure 5 data point at a smaller sample count."""
    study = _bernstein_study(spec)
    victim_key, _ = study.resolve_keys(
        _key_param(spec, "victim_key"), _key_param(spec, "attacker_key")
    )
    victim = merge_shard_samples(
        [p["victim"] for p in parts], partial=True
    )
    attacker = merge_shard_samples(
        [p["attacker"] for p in parts], partial=True
    )
    return study.attack(victim, attacker, victim_key)


@register_experiment(
    "bernstein",
    summarize=_summarize_bernstein,
    plan_shards=plan_bernstein_shards,
    run_shard=run_bernstein_shard,
    merge_shards=merge_bernstein_shards,
    merge_partial=merge_bernstein_partial,
    resolve_kernel=resolve_engine_kernel,
)
def run_bernstein(spec: ExperimentSpec):
    """One Figure 5 panel: the correlation attack against one setup.

    Params: ``victim_key``/``attacker_key`` (hex; drawn from the cell
    stream when absent), ``background_window_lines`` (interference
    ablation), ``engine_campaign_seed``, ``variant`` plus the
    :data:`SETUP_OVERRIDE_FIELDS` (setup ablations).
    """
    study = _bernstein_study(spec)
    return study.run(
        victim_key=_key_param(spec, "victim_key"),
        attacker_key=_key_param(spec, "attacker_key"),
        campaign_seed=_engine_campaign_seed(spec),
    )


# -- timing_samples ---------------------------------------------------------

def _summarize_timing(
    spec: ExperimentSpec, payload: TimingSamples
) -> Dict[str, Any]:
    return {
        "mean_cycles": round(float(payload.timings.mean()), 2),
        "std_cycles": round(float(payload.timings.std()), 2),
    }


def _timing_engine(spec: ExperimentSpec) -> AESTimingEngine:
    return AESTimingEngine(
        resolve_setup(spec),
        background=resolve_background(spec),
        config=EngineConfig(kernel=_spec_kernel(spec)),
        rng=spec.rng(),
    )


def plan_timing_shards(
    spec: ExperimentSpec,
    max_shards: int,
    policy: Optional[ShardPolicy] = None,
) -> ShardPlan:
    return _timing_engine(spec).shard_plan(spec.num_samples, max_shards,
                                           policy)


def run_timing_shard(spec: ExperimentSpec, shard: Shard) -> ShardSamples:
    key = _key_param(spec, "key") or bytes(range(16))
    return _timing_engine(spec).collect_shard(
        key,
        spec.num_samples,
        shard,
        party=spec.param("party", "victim"),
        campaign_seed=_engine_campaign_seed(spec),
    )


def merge_timing_shards(
    spec: ExperimentSpec, parts: Sequence[ShardSamples]
) -> TimingSamples:
    return merge_shard_samples(parts)


def merge_timing_partial(
    spec: ExperimentSpec, parts: Sequence[ShardSamples]
) -> TimingSamples:
    return merge_shard_samples(parts, partial=True)


@register_experiment(
    "timing_samples",
    summarize=_summarize_timing,
    plan_shards=plan_timing_shards,
    run_shard=run_timing_shard,
    merge_shards=merge_timing_shards,
    merge_partial=merge_timing_partial,
    resolve_kernel=resolve_engine_kernel,
)
def run_timing_samples(spec: ExperimentSpec) -> TimingSamples:
    """Raw one-party timing collection (Figure 4 substrate).

    Params: ``key`` (hex, default the 00..0f pattern key), ``party``.
    """
    key = _key_param(spec, "key") or bytes(range(16))
    return _timing_engine(spec).collect(
        key,
        spec.num_samples,
        party=spec.param("party", "victim"),
        campaign_seed=_engine_campaign_seed(spec),
    )


# -- pwcet ------------------------------------------------------------------

@dataclass
class PwcetPayload:
    """Collected execution times plus the MBPTA verdicts."""

    times: np.ndarray
    report: Optional[MBPTAReport]


def _summarize_pwcet(
    spec: ExperimentSpec, payload: PwcetPayload
) -> Dict[str, Any]:
    record: Dict[str, Any] = {
        "runs": int(payload.times.size),
        "mean_cycles": round(float(payload.times.mean()), 1),
        "max_cycles": round(float(payload.times.max()), 1),
    }
    report = payload.report
    if report is not None:
        record.update(
            ljung_box_p=round(report.independence.p_value, 4),
            ks_p=round(report.identical_distribution.p_value, 4),
            compliant=report.compliant,
        )
        if report.curve is not None:
            record["pwcet_1e-12"] = round(report.pwcet(1e-12), 1)
    return record


def _pwcet_trace(spec: ExperimentSpec):
    return multi_page_task_trace(
        pages=int(spec.param("pages", 5)),
        lines_per_page=int(spec.param("lines_per_page", 128)),
        object_lines=int(spec.param("object_lines", 0)),
        object_offset=int(spec.param("object_offset", 0)),
        rewalk_lines=int(spec.param("rewalk_lines", 256)),
    )


def _pwcet_run_seed(root, run: int) -> int:
    child = np.random.SeedSequence(
        entropy=root.entropy, spawn_key=root.spawn_key + (run,)
    )
    return int(child.generate_state(1)[0])


def _pwcet_times_vector(
    spec: ExperimentSpec, trace, start: int, end: int
) -> Optional[np.ndarray]:
    """Run-parallel replay of runs ``[start, end)``, or None outside
    the vector envelope.

    Each scalar run builds a *fresh* hierarchy (restarting every
    replacement draw stream), so the batch reproduces it with one
    seeded lane per run — bit-identical latencies, ``R`` runs wide.
    """
    from repro.kernels.replay import VectorHierarchyBatch, hierarchy_support

    config = setup_hierarchy_config(spec.setup)
    if hierarchy_support(config) is not None:
        return None
    batch = VectorHierarchyBatch(config, end - start)
    if bool(spec.param("reseed", True)):
        root = spec.seed_sequence()
        for offset, run in enumerate(range(start, end)):
            batch.set_seeds(offset, _pwcet_run_seed(root, run))
    return batch.run_trace(trace).astype(np.float64)


def _pwcet_times(spec: ExperimentSpec, start: int, end: int) -> np.ndarray:
    """Execution times of runs ``[start, end)`` of the cell's budget.

    Run ``i`` reseeds from the ``i``-th child of the cell's seed
    stream — constructed directly by position (identical to
    ``seed_sequence().spawn(n)[i]``, without materialising the whole
    budget's children in every shard) — so a run's platform seed
    depends only on its position, never on which shard executes it or
    in what order.
    """
    trace = _pwcet_trace(spec)
    if _spec_kernel(spec) != "scalar" and end > start:
        times = _pwcet_times_vector(spec, trace, start, end)
        if times is not None:
            return times
    reseed = bool(spec.param("reseed", True))
    root = spec.seed_sequence() if reseed else None
    times = np.empty(end - start)
    for offset, run in enumerate(range(start, end)):
        hierarchy = make_setup_hierarchy(spec.setup)
        if root is not None:
            hierarchy.set_seeds(_pwcet_run_seed(root, run))
        times[offset] = hierarchy.run_trace(trace)
    return times


def _pwcet_payload(spec: ExperimentSpec, times: np.ndarray) -> PwcetPayload:
    report: Optional[MBPTAReport] = None
    if bool(spec.param("analyse", True)):
        analysis = MBPTAAnalysis(
            method=spec.param("method", "pot"),
            tail_fraction=float(spec.param("tail_fraction", 0.15)),
        )
        report = analysis.analyse(times)
    return PwcetPayload(times=times, report=report)


def plan_pwcet_shards(
    spec: ExperimentSpec,
    max_shards: int,
    policy: Optional[ShardPolicy] = None,
) -> ShardPlan:
    """Runs are independent, so any split (even or adaptive) merges."""
    return (policy or ShardPolicy()).plan(spec.num_samples, max_shards)


def run_pwcet_shard(spec: ExperimentSpec, shard: Shard) -> np.ndarray:
    return _pwcet_times(spec, shard.start, shard.end)


def merge_pwcet_shards(
    spec: ExperimentSpec, parts: Sequence[np.ndarray]
) -> PwcetPayload:
    return _pwcet_payload(spec, np.concatenate(list(parts)))


def merge_pwcet_partial(
    spec: ExperimentSpec, parts: Sequence[np.ndarray]
) -> PwcetPayload:
    """MBPTA verdicts over the runs collected so far (a prefix of the
    budget); the admission tests may legitimately fail on few runs —
    the runner treats partial-merge failures as skippable."""
    return _pwcet_payload(spec, np.concatenate(list(parts)))


@register_experiment(
    "pwcet",
    summarize=_summarize_pwcet,
    plan_shards=plan_pwcet_shards,
    run_shard=run_pwcet_shard,
    merge_shards=merge_pwcet_shards,
    merge_partial=merge_pwcet_partial,
    resolve_kernel=resolve_pwcet_kernel,
)
def run_pwcet(spec: ExperimentSpec) -> PwcetPayload:
    """MBPTA collection + analysis on one setup (``num_samples`` runs).

    Params: trace shape (``pages``, ``lines_per_page``,
    ``object_lines``, ``object_offset``, ``rewalk_lines``), ``reseed``
    (False = deterministic platform, no per-run reseeding),
    ``analyse`` (False = collect only), ``method``, ``tail_fraction``.
    """
    return _pwcet_payload(spec, _pwcet_times(spec, 0, spec.num_samples))


# -- contention attacks (prime_probe / evict_time) --------------------------

#: Default geometry for the contention-attack kinds: small enough that
#: a trial is cheap, structured like the paper's L1 (16 sets, 4 ways).
_CONTENTION_GEOMETRY = (2048, 4, 32)

#: spawn_key tag reserving the per-trial victim/attacker placement-seed
#: stream (trial RNG children use bare ``(trial,)`` suffixes — the
#: two-word suffix below never collides with them).
_CONTENTION_SEED_TAG = 0x7541_5EED

#: Per-kind default secret-space size (the paper's table sizes differ
#: per attack cost: Evict+Time builds ``num_entries`` caches per trial).
_CONTENTION_DEFAULT_ENTRIES = {"prime_probe": 16, "evict_time": 8}


def _contention_geometry(spec: ExperimentSpec):
    from repro.cache.core import CacheGeometry

    size, ways, line = _CONTENTION_GEOMETRY
    return CacheGeometry(
        total_size=int(spec.param("cache_bytes", size)),
        num_ways=int(spec.param("ways", ways)),
        line_size=int(spec.param("line_bytes", line)),
    )


def _contention_policy(spec: ExperimentSpec) -> str:
    """The L1 policy under attack: explicit param, or the setup's."""
    policy = spec.param("policy")
    if policy is not None:
        return str(policy)
    if spec.setup is None:
        raise ValueError(
            f"{spec.kind} cells need a setup or a 'policy' param"
        )
    return make_setup(spec.setup).l1_policy


def _contention_seeding(spec: ExperimentSpec) -> str:
    """Per-trial seed discipline: 'fixed', 'shared' or 'per_process'.

    Derived from the setup when not given explicitly: deterministic
    placement needs no seeds; randomized placement gets fresh per-trial
    seeds — shared between the parties when the setup lets an attacker
    run under the victim's seed (the MBPTACache hazard), unique per
    process otherwise (TSCache).
    """
    mode = spec.param("seeding")
    if mode is not None:
        if mode not in ("fixed", "shared", "per_process"):
            raise ValueError(
                f"unknown seeding mode {mode!r}; choose fixed, shared "
                "or per_process"
            )
        return str(mode)
    if spec.setup is None:
        return "fixed"
    setup = make_setup(spec.setup)
    if not setup.is_randomized:
        return "fixed"
    return "shared" if setup.shared_seed_between_parties else "per_process"


def _contention_cache_factory(spec: ExperimentSpec):
    geometry = _contention_geometry(spec)
    policy = _contention_policy(spec)
    if policy == "rpcache":
        from repro.cache.rpcache import RPCache

        return lambda: RPCache(geometry)
    # Default to the setup's replacement policy (MBPTA designs pair
    # random placement with random replacement, §2.1); the factory
    # builds a fresh cache per trial, and RandomReplacement's default
    # PRNG is fixed-seeded, so trial outcomes stay a pure function of
    # the trial index on every shard.
    replacement = spec.param("replacement")
    if replacement is None:
        replacement = (
            make_setup(spec.setup).l1_replacement
            if spec.setup is not None
            else "lru"
        )

    def factory():
        return SetAssociativeCache(
            geometry,
            make_placement(policy, geometry.layout()),
            make_replacement(
                replacement, geometry.num_sets, geometry.num_ways
            ),
        )

    return factory


def _contention_seeder(spec: ExperimentSpec):
    """The per-trial ``seed_victim`` hook, or None for fixed seeding.

    Seeds are drawn from a reserved child of the cell's seed stream,
    keyed by the absolute trial index — a pure function of (spec,
    trial), which keeps sharded runs bit-identical to serial ones.
    """
    mode = _contention_seeding(spec)
    if mode == "fixed":
        return None
    if _contention_policy(spec) == "rpcache":
        raise ValueError(
            "rpcache has no placement seeds (pids select permutation "
            "tables); use seeding='fixed'"
        )
    root = spec.seed_sequence()
    victim_pid = int(spec.param("victim_pid", 1))
    attacker_pid = int(spec.param("attacker_pid", 2))

    def seeder(cache, trial):
        child = np.random.SeedSequence(
            entropy=root.entropy,
            spawn_key=root.spawn_key + (_CONTENTION_SEED_TAG, trial),
        )
        victim_seed, attacker_seed = (
            int(word) for word in child.generate_state(2)
        )
        if mode == "shared":
            attacker_seed = victim_seed
        cache.set_seed(victim_seed, pid=victim_pid)
        cache.set_seed(attacker_seed, pid=attacker_pid)

    return seeder


def _contention_entries(spec: ExperimentSpec) -> int:
    return int(
        spec.param("num_entries", _CONTENTION_DEFAULT_ENTRIES[spec.kind])
    )


def _contention_attack_class(kind: str) -> type:
    """The single kind -> attack-class dispatch point."""
    from repro.attack.evict_time import EvictTimeAttack
    from repro.attack.prime_probe import PrimeProbeAttack

    classes = {
        "prime_probe": PrimeProbeAttack,
        "evict_time": EvictTimeAttack,
    }
    try:
        return classes[kind]
    except KeyError:
        raise ValueError(f"not a contention kind: {kind!r}") from None


def _contention_attack(spec: ExperimentSpec):
    cls = _contention_attack_class(spec.kind)
    kwargs = dict(
        cache_factory=_contention_cache_factory(spec),
        num_entries=_contention_entries(spec),
        victim_pid=int(spec.param("victim_pid", 1)),
        attacker_pid=int(spec.param("attacker_pid", 2)),
        seed=spec.seed_sequence(),
        kernel=_spec_kernel(spec),
    )
    if spec.kind == "evict_time":
        kwargs["miss_penalty"] = int(spec.param("miss_penalty", 10))
    return cls(**kwargs)


def resolve_contention_kernel(spec: ExperimentSpec) -> KernelResolution:
    """The kernel a contention cell will actually execute on.

    Resolves the spec's hint against the vector envelope by probing a
    freshly-built cache with the *same* capability check the attack
    applies per block; "auto"/"vector" fall back to scalar outside it
    (e.g. a custom replacement PRNG, a wide hashRP) with the probe's
    reason attached."""
    kernel = _spec_kernel(spec)
    if kernel == "scalar":
        return KernelResolution("scalar")
    from repro.kernels.trials import vector_cache_support

    reason = vector_cache_support(_contention_cache_factory(spec)())
    if reason is None:
        return KernelResolution("vector")
    return KernelResolution("scalar", reason)


def _summarize_contention(spec: ExperimentSpec, payload) -> Dict[str, Any]:
    return {
        "trials": payload.trials,
        "correct": payload.correct,
        "accuracy": round(payload.accuracy, 4),
        "chance": round(payload.chance_level, 4),
        "leaks": payload.leaks,
    }


def plan_contention_shards(
    spec: ExperimentSpec,
    max_shards: int,
    policy: Optional[ShardPolicy] = None,
) -> ShardPlan:
    """Trials are independent, so any split geometry is merge-safe.

    Under an adaptive policy the leading shards are small, which is
    what lets an ``early_stop`` run reach the SPRT's minimum trial
    count after the first unit instead of after ``budget/max_shards``.
    """
    return (policy or ShardPolicy()).plan(spec.num_samples, max_shards)


def run_contention_shard(spec: ExperimentSpec, shard: Shard):
    """Trial outcomes for one shard's range of the cell's budget."""
    attack = _contention_attack(spec)
    return attack.run_block(
        shard.start,
        shard.end,
        spec.num_samples,
        seed_victim=_contention_seeder(spec),
    )


def _contention_result_type(kind: str) -> type:
    return _contention_attack_class(kind).result_type


def merge_contention_shards(spec: ExperimentSpec, parts: Sequence[Any]):
    from repro.attack.trials import merge_trial_blocks

    return merge_trial_blocks(
        parts, result_type=_contention_result_type(spec.kind)
    )


def merge_contention_partial(spec: ExperimentSpec, parts: Sequence[Any]):
    """Accuracy over the contiguous trial prefix completed so far —
    the payload the ``should_stop`` hook rules on."""
    from repro.attack.trials import merge_trial_blocks

    return merge_trial_blocks(
        parts,
        partial=True,
        result_type=_contention_result_type(spec.kind),
    )


def _contention_stop_params(spec: ExperimentSpec):
    # The min-trials floor adapts to the budget: a cell whose whole
    # budget is below the fixed floor (the grid's evict_time cells)
    # could otherwise never evaluate its rule on any strict prefix —
    # the Wald boundaries control the error rates at any floor, the
    # floor only adds conservatism.
    default_min = min(16, max(4, spec.num_samples // 2))
    return (
        float(spec.param("stop_leak_factor", 4.0)),
        float(spec.param("stop_alpha", 1e-3)),
        int(spec.param("stop_min_trials", default_min)),
    )


def contention_should_stop(spec: ExperimentSpec, partial) -> bool:
    """Stop once the SPRT decides leak *or* no-leak on the prefix.

    The stop additionally requires the sequential decision to agree
    with the verdict the truncated payload will report
    (:attr:`ContentionResult.leaks`, the 3x-chance threshold): near
    the threshold the SPRT can decide while the prefix accuracy sits
    on the other side of 3x chance, and stopping there would report a
    verdict the decision does not back.  Clear-cut cells (all four
    paper setups) are never delayed by the extra check.
    """
    from repro.attack.trials import sequential_leak_test

    leak_factor, alpha, min_trials = _contention_stop_params(spec)
    verdict = sequential_leak_test(
        partial.trials,
        partial.correct,
        partial.chance_level,
        leak_factor=leak_factor,
        alpha=alpha,
        min_trials=min_trials,
    )
    return verdict is not None and verdict == partial.leaks


def contention_stop_rule(spec: ExperimentSpec) -> str:
    leak_factor, alpha, min_trials = _contention_stop_params(spec)
    chance = 1.0 / _contention_entries(spec)
    return (
        f"sprt acc vs chance={chance:.3g} "
        f"(leak={leak_factor:g}x, alpha={alpha:g}, min={min_trials})"
    )


@register_experiment(
    "prime_probe",
    summarize=_summarize_contention,
    plan_shards=plan_contention_shards,
    run_shard=run_contention_shard,
    merge_shards=merge_contention_shards,
    merge_partial=merge_contention_partial,
    should_stop=contention_should_stop,
    stop_rule=contention_stop_rule,
    resolve_kernel=resolve_contention_kernel,
)
def run_prime_probe(spec: ExperimentSpec):
    """Prime+Probe guessing accuracy on one cache configuration.

    Params: ``policy`` (placement name, default the setup's L1
    policy), ``seeding`` (``fixed``/``shared``/``per_process``,
    default derived from the setup), ``num_entries`` (default 16),
    ``cache_bytes``/``ways``/``line_bytes`` (geometry),
    ``replacement`` (default ``lru``), ``victim_pid``/``attacker_pid``,
    plus the stopping-rule knobs ``stop_leak_factor``/``stop_alpha``/
    ``stop_min_trials``.
    """
    return _contention_attack(spec).run(
        spec.num_samples, seed_victim=_contention_seeder(spec)
    )


@register_experiment(
    "evict_time",
    summarize=_summarize_contention,
    plan_shards=plan_contention_shards,
    run_shard=run_contention_shard,
    merge_shards=merge_contention_shards,
    merge_partial=merge_contention_partial,
    should_stop=contention_should_stop,
    stop_rule=contention_stop_rule,
    resolve_kernel=resolve_contention_kernel,
)
def run_evict_time(spec: ExperimentSpec):
    """Evict+Time guessing accuracy on one cache configuration.

    Same params as ``prime_probe`` plus ``miss_penalty``;
    ``num_entries`` defaults to 8 because each trial builds
    ``num_entries`` fresh caches (one per eviction target).
    """
    return _contention_attack(spec).run(
        spec.num_samples, seed_victim=_contention_seeder(spec)
    )


# -- missrate ---------------------------------------------------------------

#: The §6.2.3 synthetic workload suite (plus the alignment pathology).
WORKLOAD_BUILDERS: Dict[str, Callable[[], Any]] = {
    "stride": lambda: stride_trace(count=2048, stride=32, repeats=3),
    "reuse": lambda: reuse_trace(working_set=192, accesses=12000),
    "chase": lambda: pointer_chase_trace(
        num_nodes=480, node_size=32, hops=12000
    ),
    "random": lambda: random_trace(span=1 << 18, accesses=12000),
    "matrix": lambda: matrix_walk_trace(rows=96, cols=96, column_major=True),
    "thrash": lambda: pointer_chase_trace(
        num_nodes=768, node_size=64, hops=12000
    ),
}


@dataclass
class MissRatePayload:
    """One policy x workload cell of the overheads table."""

    policy: str
    workload: str
    accesses: int
    misses: int
    miss_rate: float


def _summarize_missrate(
    spec: ExperimentSpec, payload: MissRatePayload
) -> Dict[str, Any]:
    return {
        "accesses": payload.accesses,
        "misses": payload.misses,
        "miss_rate_pct": round(payload.miss_rate * 100, 2),
    }


def _missrate_cache(spec: ExperimentSpec) -> SetAssociativeCache:
    """The cell's cache, fresh — shared by the runner and the kernel
    resolver's envelope probe."""
    policy = spec.param("policy")
    if policy is None:
        raise ValueError("missrate cells need 'policy' and 'workload' params")
    geometry = ARM920T_L1_GEOMETRY
    return SetAssociativeCache(
        geometry,
        make_placement(policy, geometry.layout()),
        make_replacement(
            spec.param("replacement", "lru"),
            geometry.num_sets,
            geometry.num_ways,
        ),
    )


@register_experiment(
    "missrate",
    summarize=_summarize_missrate,
    resolve_kernel=resolve_missrate_kernel,
)
def run_missrate(spec: ExperimentSpec) -> MissRatePayload:
    """Miss rate of one placement policy on one synthetic workload.

    Params: ``policy`` (placement name), ``workload`` (a
    :data:`WORKLOAD_BUILDERS` key), ``replacement`` (default ``lru``).
    The cache seed is the spec's root ``seed`` so the table matches
    the historical fixed-seed (0x1234) measurements when asked to.
    """
    policy = spec.param("policy")
    workload = spec.param("workload")
    if policy is None or workload is None:
        raise ValueError("missrate cells need 'policy' and 'workload' params")
    try:
        trace = WORKLOAD_BUILDERS[workload]()
    except KeyError:
        raise ValueError(
            f"unknown workload {workload!r}; "
            f"choose from {sorted(WORKLOAD_BUILDERS)}"
        ) from None
    cache = _missrate_cache(spec)
    cache.set_seed(spec.seed)
    if _spec_kernel(spec) != "scalar":
        from repro.kernels.replay import missrate_support, replay_missrate

        if missrate_support(cache) is None:
            accesses, misses = replay_missrate(cache, trace)
            return MissRatePayload(
                policy=policy,
                workload=workload,
                accesses=accesses,
                misses=misses,
                miss_rate=misses / accesses if accesses else 0.0,
            )
    for access in trace:
        cache.access(access)
    stats = cache.stats
    return MissRatePayload(
        policy=policy,
        workload=workload,
        accesses=stats.accesses,
        misses=stats.misses,
        miss_rate=stats.miss_rate,
    )
