"""Experiment-kind registry.

An *experiment kind* maps an :class:`~repro.campaigns.spec.ExperimentSpec`
to a result payload.  Kinds are module-level functions registered by
name so :func:`~repro.campaigns.runner.execute_cell` can be shipped to
``ProcessPoolExecutor`` workers by reference (closures would not
pickle).  The built-in kinds live in
:mod:`repro.campaigns.experiments`; benchmarks and downstream users may
register their own with :func:`register_experiment`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.campaigns.spec import ExperimentSpec

RunFn = Callable[[ExperimentSpec], Any]
SummarizeFn = Callable[[ExperimentSpec, Any], Dict[str, Any]]


@dataclass(frozen=True)
class ExperimentKind:
    """A named experiment: a cell runner plus a summary projector."""

    name: str
    run: RunFn
    #: Projects a payload to flat JSON-able fields for tables/JSON.
    summarize: SummarizeFn


_REGISTRY: Dict[str, ExperimentKind] = {}


def _default_summarize(spec: ExperimentSpec, payload: Any) -> Dict[str, Any]:
    return {"payload": repr(payload)}


def register_experiment(
    name: str, *, summarize: Optional[SummarizeFn] = None
) -> Callable[[RunFn], RunFn]:
    """Decorator registering ``fn`` as the runner for kind ``name``."""

    def decorator(fn: RunFn) -> RunFn:
        if name in _REGISTRY:
            raise ValueError(f"experiment kind {name!r} already registered")
        _REGISTRY[name] = ExperimentKind(
            name=name, run=fn, summarize=summarize or _default_summarize
        )
        return fn

    return decorator


def get_experiment(name: str) -> ExperimentKind:
    """Look up a kind, loading the built-ins on first use."""
    if name not in _REGISTRY:
        # Built-in kinds register on import; deferred to avoid a cycle
        # with repro.core.simulator.
        import repro.campaigns.experiments  # noqa: F401
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment kind {name!r}; "
            f"registered: {sorted(_REGISTRY)}"
        ) from None


def experiment_kinds() -> Tuple[str, ...]:
    import repro.campaigns.experiments  # noqa: F401

    return tuple(sorted(_REGISTRY))
