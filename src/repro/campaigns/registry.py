"""Experiment-kind registry.

An *experiment kind* maps an :class:`~repro.campaigns.spec.ExperimentSpec`
to a result payload.  Kinds are module-level functions registered by
name so :func:`~repro.campaigns.runner.execute_cell` can be shipped to
``ProcessPoolExecutor`` workers by reference (closures would not
pickle).  The built-in kinds live in
:mod:`repro.campaigns.experiments`; benchmarks and downstream users may
register their own with :func:`register_experiment`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple, Union

from repro.campaigns.spec import ExperimentSpec
from repro.core.batch import Shard, ShardPlan, ShardPolicy


@dataclass(frozen=True)
class KernelResolution:
    """The kernel a cell will execute on, with the fallback reason.

    ``reason`` is a stable machine-readable string (``None`` unless a
    requested/auto vector path fell back to scalar) — surfaced in the
    ``--dry-run`` kernel column and journaled as a ``kernel_fallback``
    telemetry event so scalar fallbacks are never silent.
    """

    kernel: str
    reason: Optional[str] = None


#: ``plan_shards`` hooks take ``(spec, max_shards, policy=None)`` — the
#: optional :class:`~repro.core.batch.ShardPolicy` selects the cut
#: geometry (even/adaptive); None means the kind's default (even).
RunFn = Callable[[ExperimentSpec], Any]
SummarizeFn = Callable[[ExperimentSpec, Any], Dict[str, Any]]
PlanShardsFn = Callable[[ExperimentSpec, int, Optional[ShardPolicy]],
                        ShardPlan]
RunShardFn = Callable[[ExperimentSpec, Shard], Any]
MergeShardsFn = Callable[[ExperimentSpec, Sequence[Any]], Any]
MergePartialFn = Callable[[ExperimentSpec, Sequence[Any]], Any]
ShouldStopFn = Callable[[ExperimentSpec, Any], bool]
StopRuleFn = Callable[[ExperimentSpec], str]
#: May return a bare kernel name or a :class:`KernelResolution` when a
#: fallback reason should travel with it.
ResolveKernelFn = Callable[[ExperimentSpec], Union[str, KernelResolution]]


@dataclass(frozen=True)
class ExperimentKind:
    """A named experiment: a cell runner plus a summary projector.

    A kind may additionally be *shardable*: ``plan_shards`` partitions
    one cell's budget into a :class:`~repro.core.batch.ShardPlan`,
    ``run_shard`` computes one shard's partial payload, and
    ``merge_shards`` (given the partials **in shard order**) rebuilds
    the exact payload ``run`` would have produced.  Like ``run``, the
    shard hooks must be module-level functions so process-pool workers
    can unpickle them by reference.
    """

    name: str
    run: RunFn
    #: Projects a payload to flat JSON-able fields for tables/JSON.
    summarize: SummarizeFn
    plan_shards: Optional[PlanShardsFn] = None
    run_shard: Optional[RunShardFn] = None
    merge_shards: Optional[MergeShardsFn] = None
    #: Optional streaming hook: merges a contiguous *prefix* of shard
    #: partials (0..k-1 of n) into a payload-shaped preview so the
    #: runner can surface incremental results before the cell
    #: finishes.  Best-effort — the runner swallows its failures.
    merge_partial: Optional[MergePartialFn] = None
    #: Optional early-stopping hook, evaluated by the runner (when
    #: ``early_stop=True``) on each merged contiguous-prefix payload:
    #: return True once the cell's verdict is statistically decided
    #: and its remaining shards should be cancelled.  Requires
    #: ``merge_partial`` (the hook's input is its output).
    should_stop: Optional[ShouldStopFn] = None
    #: Optional human-readable description of the stopping rule for
    #: one spec (test kind, thresholds) — surfaced by ``--dry-run``.
    stop_rule: Optional[StopRuleFn] = None
    #: Optional: which execution kernel ("vector"/"scalar") the cell
    #: will actually run on, after resolving the spec's ``kernel``
    #: param against the kind's capabilities — surfaced by
    #: ``--dry-run`` so a mis-resolved "auto" is visible before
    #: dispatch.  Purely informational: kernels never change results.
    resolve_kernel: Optional[ResolveKernelFn] = None

    @property
    def shardable(self) -> bool:
        return self.run_shard is not None

    def __post_init__(self) -> None:
        hooks = (self.plan_shards, self.run_shard, self.merge_shards)
        if any(h is not None for h in hooks) and None in hooks:
            raise ValueError(
                f"kind {self.name!r} must define all of plan_shards/"
                "run_shard/merge_shards, or none"
            )
        if self.merge_partial is not None and self.run_shard is None:
            raise ValueError(
                f"kind {self.name!r} defines merge_partial but is not "
                "shardable"
            )
        if self.should_stop is not None and self.merge_partial is None:
            raise ValueError(
                f"kind {self.name!r} defines should_stop but no "
                "merge_partial to evaluate it on"
            )
        if self.stop_rule is not None and self.should_stop is None:
            raise ValueError(
                f"kind {self.name!r} defines stop_rule without "
                "should_stop"
            )


_REGISTRY: Dict[str, ExperimentKind] = {}


def _default_summarize(spec: ExperimentSpec, payload: Any) -> Dict[str, Any]:
    return {"payload": repr(payload)}


def register_experiment(
    name: str,
    *,
    summarize: Optional[SummarizeFn] = None,
    plan_shards: Optional[PlanShardsFn] = None,
    run_shard: Optional[RunShardFn] = None,
    merge_shards: Optional[MergeShardsFn] = None,
    merge_partial: Optional[MergePartialFn] = None,
    should_stop: Optional[ShouldStopFn] = None,
    stop_rule: Optional[StopRuleFn] = None,
    resolve_kernel: Optional[ResolveKernelFn] = None,
) -> Callable[[RunFn], RunFn]:
    """Decorator registering ``fn`` as the runner for kind ``name``."""

    def decorator(fn: RunFn) -> RunFn:
        if name in _REGISTRY:
            raise ValueError(f"experiment kind {name!r} already registered")
        _REGISTRY[name] = ExperimentKind(
            name=name,
            run=fn,
            summarize=summarize or _default_summarize,
            plan_shards=plan_shards,
            run_shard=run_shard,
            merge_shards=merge_shards,
            merge_partial=merge_partial,
            should_stop=should_stop,
            stop_rule=stop_rule,
            resolve_kernel=resolve_kernel,
        )
        return fn

    return decorator


def get_experiment(name: str) -> ExperimentKind:
    """Look up a kind, loading the built-ins on first use."""
    if name not in _REGISTRY:
        # Built-in kinds register on import; deferred to avoid a cycle
        # with repro.core.simulator.
        import repro.campaigns.experiments  # noqa: F401
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment kind {name!r}; "
            f"registered: {sorted(_REGISTRY)}"
        ) from None


def experiment_kinds() -> Tuple[str, ...]:
    import repro.campaigns.experiments  # noqa: F401

    return tuple(sorted(_REGISTRY))
