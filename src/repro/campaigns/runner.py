"""Single-campaign execution: the classic ``CampaignRunner`` facade.

A *campaign* is a list of :class:`ExperimentSpec` cells.  The
:class:`CampaignRunner` turns them into self-describing work units —
one per whole cell, or one per :class:`~repro.core.batch.Shard` of a
sharded cell — and executes them on an
:class:`~repro.backends.base.ExecutionBackend`:

* ``workers=1`` → :class:`~repro.backends.local.SerialBackend`
  (in-process, spec order — the reference semantics),
* ``workers>1`` → :class:`~repro.backends.local.ProcessPoolBackend`,
* any explicit ``backend=`` — e.g.
  :class:`~repro.backends.workqueue.WorkQueueBackend`, which ships
  units to independent ``repro worker`` processes through a
  filesystem queue.

Results are bit-identical on every backend and for any completion
order, because each unit draws exclusively from randomness keyed to
its spec (and, for shards, to absolute sample positions) — never from
shared mutable state.

This module is the *single-campaign facade* over the layered campaign
engine; the pieces live in focused modules and are re-exported here
for backward compatibility:

* :mod:`repro.campaigns.cache` — :class:`ResultCache` (durability:
  whole-cell entries, per-shard partials, early-stop markers, gc with
  liveness leases),
* :mod:`repro.campaigns.plan` — :class:`CellPlan` and the shard/kernel
  planning helpers (the ``--dry-run`` layer),
* :mod:`repro.campaigns.results` — :class:`CellResult`,
  :class:`ProgressEvent`, :class:`CampaignResult`,
* :mod:`repro.campaigns.engine` — :class:`CampaignExecution`, the
  backend-agnostic per-campaign state machine this runner drives over
  exactly one backend (and the multi-tenant
  :class:`~repro.service.scheduler.CampaignScheduler` drives many of
  over one shared backend).

**Durability** (``cache_dir``): finished cells are skipped on re-runs
(keyed by :meth:`ExperimentSpec.spec_hash`), and *per-shard partials*
are persisted as each shard completes — an interrupted big cell
resumes mid-cell from its completed shards instead of recollecting
them.  All cache writes are atomic (temp file + fsync + rename), so a
crash can never leave a truncated entry that poisons later hits.

**Early stopping** (``early_stop=True``): kinds may define a
``should_stop`` hook that rules on each merged contiguous-prefix
payload; once it fires, the cell's remaining shards are cancelled on
the backend (each built-in backend drops its not-yet-running units —
stragglers already executing are discarded on arrival) and the cell
finishes early with the decided prefix as its payload, marked
:attr:`CellResult.early_stopped` and cached at its decided-at sample
count (an entry only other early-stop runs accept — a full-budget
runner recomputes it).

**Progress**: the ``progress`` callback receives a
:class:`ProgressEvent` for every completed unit — each shard, each
cell, each cache-restored cell *and* each cache-restored shard (marked
``from_cache`` so ETA math can count them complete without letting
their zero cost skew the throughput estimate).  With
``stream_partials=True``, kinds that define a ``merge_partial`` hook
additionally emit ``"partial"`` events carrying the merged payload of
the contiguous shard prefix completed so far — incremental
attack/pWCET results long before the cell finishes.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    List,
    Optional,
    Sequence,
)

from repro.campaigns.cache import CacheGCStats, ResultCache  # noqa: F401
from repro.campaigns.engine import CampaignExecution, CellState
from repro.campaigns.plan import (  # noqa: F401
    CellPlan,
    plan_cells,
    plan_hook_accepts_policy,
    resolved_kernel,
    shard_plan_for,
)
from repro.campaigns.registry import get_experiment
from repro.campaigns.results import (  # noqa: F401
    CampaignResult,
    CellResult,
    ProgressEvent,
    ProgressFn,
    cell_weight,
)
from repro.campaigns.spec import ExperimentSpec
from repro.core.batch import ShardPlan, ShardPolicy

if TYPE_CHECKING:  # runtime import is deferred: backends import us
    from repro.backends.base import ExecutionBackend

#: Backward-compatible aliases for the pre-split private names (the
#: split moved these helpers into :mod:`repro.campaigns.plan` /
#: :mod:`repro.campaigns.engine` under public names).
_plan_hook_accepts_policy = plan_hook_accepts_policy
_resolved_kernel = resolved_kernel
_PendingCell = CellState


def execute_cell(spec: ExperimentSpec) -> Any:
    """Run one cell and return its payload (module-level: picklable)."""
    return get_experiment(spec.kind).run(spec)


class CampaignRunner:
    """Executes campaigns of experiment cells.

    Parameters
    ----------
    workers:
        Sizes the default backend: 1 = serial in-process execution,
        >1 = a process pool of that size.  Ignored when ``backend``
        is given.  Payloads are identical either way.
    cache_dir:
        Directory for the on-disk result cache; None disables caching
        (including per-shard partials and mid-cell resume).
    progress:
        Optional callback invoked with each :class:`ProgressEvent` —
        per-shard and per-cell completions, in completion order when
        parallel, cache restores included (marked ``from_cache``).
    max_shards_per_cell:
        Upper bound on the intra-cell fan-out of shardable kinds; 1
        disables sharding.  All backends and shard counts produce
        bit-identical payloads.
    backend:
        An explicit :class:`~repro.backends.base.ExecutionBackend` to
        run units on (e.g. a
        :class:`~repro.backends.workqueue.WorkQueueBackend`).  The
        caller owns its lifecycle — the runner submits and drains but
        never closes it, so one backend can serve many campaigns.
    shard_policy:
        The :class:`~repro.core.batch.ShardPolicy` every shardable
        kind's ``plan_shards`` hook receives — ``even`` (default) or
        ``adaptive`` geometry (small leading shards growing
        geometrically, so early-stop campaigns decide on the first
        small prefix).  Geometry never changes payloads: all policies
        merge bit-identically.
    stream_partials:
        Emit ``"partial"`` progress events with the merged payload of
        each cell's contiguous completed-shard prefix (kinds with a
        ``merge_partial`` hook only).  Best-effort: a failing partial
        merge is skipped, never fatal.
    early_stop:
        Evaluate each kind's optional ``should_stop`` hook on the
        merged contiguous-prefix payload as shards complete; once it
        fires, the cell's remaining shards are cancelled on the
        backend (best effort — already-running units may still finish
        and are discarded) and the cell finishes with the decided
        prefix payload, marked :attr:`CellResult.early_stopped`.  The
        cache stores that early-stopped payload (with its decided-at
        sample count) as the cell's entry; it satisfies later
        ``early_stop=True`` runners, while a full-budget runner
        recomputes (and overwrites) it.  Only sharded cells can stop
        early — a whole-cell unit has no partials to rule on.
    telemetry:
        Optional :class:`~repro.telemetry.sink.TelemetrySink`
        receiving typed span events (unit queued/done with phase
        timings, merges, cache hits and partial restores, early-stop
        decisions, campaign start/end) alongside the ``progress``
        callback.  Default None builds no events at all; enabling it
        never changes a payload byte.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        progress: Optional[ProgressFn] = None,
        max_shards_per_cell: int = 1,
        backend: Optional["ExecutionBackend"] = None,
        shard_policy: Optional[ShardPolicy] = None,
        stream_partials: bool = False,
        early_stop: bool = False,
        telemetry=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_shards_per_cell < 1:
            raise ValueError("max_shards_per_cell must be >= 1")
        self.workers = workers
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.progress = progress
        self.max_shards_per_cell = max_shards_per_cell
        self.backend = backend
        self.shard_policy = (
            shard_policy if shard_policy is not None else ShardPolicy()
        )
        self.stream_partials = stream_partials
        self.early_stop = early_stop
        #: Optional :class:`repro.telemetry.sink.TelemetrySink`.
        #: Default None is *zero-cost*: no event dict is ever built.
        #: Enabling it is bit-identity-neutral — events observe
        #: execution, payloads never depend on them.
        self.telemetry = telemetry

    # -- planning ----------------------------------------------------------

    def _shard_plan(self, spec: ExperimentSpec) -> Optional[ShardPlan]:
        """The cell's shard plan, or None to execute it whole."""
        return shard_plan_for(
            spec, self.max_shards_per_cell, self.shard_policy
        )

    def plan(self, specs: Sequence[ExperimentSpec]) -> List[CellPlan]:
        """What :meth:`run` would do, without executing anything.

        For each cell: whether the whole-cell cache already covers it,
        the shard plan a fresh execution would use, and how many of
        those shards have persisted partials — the ``--dry-run`` view
        of a campaign (what a distributed run would dispatch).
        """
        return plan_cells(
            specs,
            cache=self.cache,
            max_shards=self.max_shards_per_cell,
            policy=self.shard_policy,
            early_stop=self.early_stop,
        )

    # -- execution ---------------------------------------------------------

    def _backend_label(self) -> str:
        if self.backend is not None:
            return type(self.backend).__name__
        return "serial" if self.workers == 1 else f"pool({self.workers})"

    def _make_backend(self, num_units: int) -> "ExecutionBackend":
        from repro.backends.local import ProcessPoolBackend, SerialBackend

        if self.workers == 1 or num_units == 1:
            return SerialBackend()
        return ProcessPoolBackend(min(self.workers, num_units))

    def run(self, specs: Sequence[ExperimentSpec]) -> CampaignResult:
        """Execute every cell, returning results in spec order."""
        execution = CampaignExecution(
            specs,
            cache=self.cache,
            max_shards_per_cell=self.max_shards_per_cell,
            shard_policy=self.shard_policy,
            stream_partials=self.stream_partials,
            early_stop=self.early_stop,
            progress=self.progress,
            telemetry=self.telemetry,
            backend_label=self._backend_label(),
        )
        execution.begin()
        units = execution.take_units()
        if units:
            backend = self.backend
            owns_backend = backend is None
            if backend is None:
                backend = self._make_backend(len(units))
            try:
                for unit in units:
                    backend.submit(unit)
                    execution.note_queued(unit)
                # Completion order (backend-defined), so finished
                # cells hit the cache and the progress callback
                # immediately instead of waiting behind a slow earlier
                # cell.  Shard partials are keyed by shard index, so
                # merges are completion-order independent.
                for result in backend.completions():
                    cancel = execution.on_result(result)
                    if cancel:
                        backend.cancel_units(cancel)
            finally:
                if owns_backend:
                    backend.close()
        return execution.finish()
