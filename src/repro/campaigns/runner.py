"""Campaign execution: serial or process-parallel, with a result cache.

A *campaign* is a list of :class:`ExperimentSpec` cells.  The
:class:`CampaignRunner` executes them

* **serially** (``workers=1``) in spec order, or
* **in parallel** across a :class:`~concurrent.futures.ProcessPoolExecutor`
  (``workers>1``) — results are bit-identical to the serial run because
  every cell draws exclusively from its own
  :meth:`~repro.campaigns.spec.ExperimentSpec.seed_sequence`, never
  from shared mutable state;

and, when given a ``cache_dir``, skips cells whose results are already
on disk (keyed by :meth:`ExperimentSpec.spec_hash`), so interrupted or
repeated sweeps only pay for unfinished cells.

**Intra-cell sharding** (``max_shards_per_cell > 1``): cells whose
kind is shardable (``bernstein``, ``timing_samples``, ``pwcet``) are
split into block-aligned :class:`~repro.core.batch.Shard` s that fan
out across the pool individually, so one big cell no longer bounds a
sweep's wall clock.  Shard partials are merged **in shard order**
regardless of completion order, and each shard's randomness is keyed
to its absolute sample positions, so the merged payload is
bit-identical to an unsharded run.

**Progress**: the ``progress`` callback receives a
:class:`ProgressEvent` for every completed unit — each shard, each
cell, and each cache-restored cell (marked ``from_cache`` so ETA math
can count it complete without letting its zero cost skew the
throughput estimate; a previous revision surfaced cache hits
indistinguishably from fresh computes, which stalled ETA estimates on
resumed sweeps).
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.campaigns.registry import (
    ExperimentKind,
    RunFn,
    RunShardFn,
    get_experiment,
)
from repro.campaigns.spec import ExperimentSpec
from repro.core.batch import Shard, ShardPlan

ProgressFn = Callable[["ProgressEvent"], None]


def execute_cell(spec: ExperimentSpec) -> Any:
    """Run one cell and return its payload (module-level: picklable)."""
    return get_experiment(spec.kind).run(spec)


def _execute_timed(run_fn: RunFn, spec: ExperimentSpec) -> Tuple[Any, float]:
    """(payload, compute seconds) for one cell.

    Receives the kind's run function directly rather than re-resolving
    ``spec.kind``: under the ``spawn`` start method a worker process
    has an empty registry apart from the built-ins, but unpickling the
    function reference imports its defining module — which re-runs any
    ``register_experiment`` side effects.  Timing happens here, on the
    worker, so parallel cells report their own compute time rather
    than time-since-pool-start.
    """
    start = time.perf_counter()
    payload = run_fn(spec)
    return payload, time.perf_counter() - start


def _execute_shard_timed(
    run_fn: RunShardFn, spec: ExperimentSpec, shard: Shard
) -> Tuple[Any, float]:
    """(partial payload, compute seconds) for one shard of a cell."""
    start = time.perf_counter()
    payload = run_fn(spec, shard)
    return payload, time.perf_counter() - start


@dataclass
class CellResult:
    """One executed (or cache-restored) cell."""

    spec: ExperimentSpec
    payload: Any
    #: Compute seconds: one timed execution for whole cells; for
    #: sharded cells the *sum* over shards plus the merge — i.e.
    #: total CPU cost, which exceeds wall clock when shards ran
    #: concurrently (cache restores report 0).
    elapsed: float
    from_cache: bool = False
    #: Shards the cell was split into (1 = executed whole).
    num_shards: int = 1

    def summary(self) -> Dict[str, Any]:
        """Flat JSON-able record: spec identity + kind-specific fields."""
        record: Dict[str, Any] = {
            "kind": self.spec.kind,
            "setup": self.spec.setup,
            "num_samples": self.spec.num_samples,
            "seed": self.spec.seed,
            "elapsed_s": round(self.elapsed, 3),
            "from_cache": self.from_cache,
        }
        record.update(dict(self.spec.params))
        kind = get_experiment(self.spec.kind)
        record.update(kind.summarize(self.spec, self.payload))
        return record


@dataclass(frozen=True)
class ProgressEvent:
    """One completed unit of campaign progress.

    ``event`` is ``"cell"`` (a cell finished — fresh, merged, or
    cache-restored) or ``"shard"`` (one shard of a sharded cell
    finished).  ``work`` is the number of samples this event newly
    completes: shard events carry their shard's size and the final
    merged-cell event carries 0, so consumers summing ``work`` never
    double-count; cells executed whole (or restored from cache) carry
    the full cell weight.  ``elapsed`` is the unit's compute seconds
    (for a sharded cell's final event: the sum over its shards plus
    the merge — CPU cost, not wall clock).
    """

    event: str
    spec: ExperimentSpec
    elapsed: float
    work: int
    from_cache: bool = False
    shard: Optional[Shard] = None
    result: Optional[CellResult] = None

    @property
    def label(self) -> str:
        """Human-readable unit label for progress lines."""
        if self.shard is not None:
            return (
                f"{self.spec.cell_id} "
                f"shard {self.shard.index + 1}/{self.shard.num_shards}"
            )
        return self.spec.cell_id


def cell_weight(spec: ExperimentSpec) -> int:
    """Progress weight of one cell (≥ 1 even for sample-less kinds)."""
    return max(spec.num_samples, 1)


@dataclass
class CampaignResult:
    """All cells of one campaign, in spec order."""

    cells: List[CellResult] = field(default_factory=list)

    def __iter__(self) -> Iterator[CellResult]:
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def payloads(self) -> List[Any]:
        return [cell.payload for cell in self.cells]

    def by_setup(self) -> Dict[str, Any]:
        """``{setup name: payload}`` (requires unique setups)."""
        table: Dict[str, Any] = {}
        for cell in self.cells:
            name = cell.spec.setup
            if name is None:
                raise ValueError(f"cell {cell.spec.cell_id} has no setup")
            if name in table:
                raise ValueError(f"duplicate setup {name!r} in campaign")
            table[name] = cell.payload
        return table

    def summaries(self) -> List[Dict[str, Any]]:
        return [cell.summary() for cell in self.cells]

    @property
    def total_elapsed(self) -> float:
        """Sum of per-cell compute time (not wall clock when parallel)."""
        return sum(cell.elapsed for cell in self.cells)

    @property
    def cache_hits(self) -> int:
        return sum(1 for cell in self.cells if cell.from_cache)


class ResultCache:
    """Pickle-per-cell on-disk cache keyed by the stable spec hash."""

    def __init__(self, cache_dir: str) -> None:
        self.cache_dir = cache_dir
        os.makedirs(cache_dir, exist_ok=True)

    def _path(self, spec: ExperimentSpec) -> str:
        return os.path.join(self.cache_dir, spec.spec_hash() + ".pkl")

    def get(self, spec: ExperimentSpec) -> Optional[Any]:
        """The cached payload, or None on miss/corruption.

        Any load failure — truncated pickles, but also stale entries
        referencing payload classes a newer version renamed or moved
        (AttributeError/ImportError) — degrades to a recompute rather
        than aborting the campaign.
        """
        path = self._path(spec)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except Exception:
            return None

    def put(self, spec: ExperimentSpec, payload: Any) -> None:
        """Store atomically (write-then-rename) so readers never see
        a partial pickle."""
        path = self._path(spec)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.cache_dir, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise


@dataclass
class _PendingCell:
    """Book-keeping for one not-yet-finished cell."""

    index: int
    spec: ExperimentSpec
    kind: ExperimentKind
    plan: Optional[ShardPlan] = None
    parts: Dict[int, Any] = field(default_factory=dict)
    elapsed: float = 0.0


class CampaignRunner:
    """Executes campaigns of experiment cells.

    Parameters
    ----------
    workers:
        1 = serial in-process execution; >1 = a process pool of that
        size.  Payloads are identical either way.
    cache_dir:
        Directory for the on-disk result cache; None disables caching.
    progress:
        Optional callback invoked with each :class:`ProgressEvent` —
        per-shard and per-cell completions, in completion order when
        parallel, cache restores included (marked ``from_cache``).
    max_shards_per_cell:
        Upper bound on the intra-cell fan-out of shardable kinds; 1
        disables sharding.  Sharded, parallel and serial runs all
        produce bit-identical payloads.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        progress: Optional[ProgressFn] = None,
        max_shards_per_cell: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_shards_per_cell < 1:
            raise ValueError("max_shards_per_cell must be >= 1")
        self.workers = workers
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.progress = progress
        self.max_shards_per_cell = max_shards_per_cell

    # -- execution ---------------------------------------------------------

    def run(self, specs: Sequence[ExperimentSpec]) -> CampaignResult:
        """Execute every cell, returning results in spec order."""
        specs = list(specs)
        # Validate kinds up front: a typo should fail before any
        # (possibly hours-long) cell executes.
        for spec in specs:
            get_experiment(spec.kind)

        results: List[Optional[CellResult]] = [None] * len(specs)
        pending: List[_PendingCell] = []
        for index, spec in enumerate(specs):
            cached = self.cache.get(spec) if self.cache else None
            if cached is not None:
                results[index] = CellResult(
                    spec=spec, payload=cached, elapsed=0.0, from_cache=True
                )
                self._report(ProgressEvent(
                    event="cell",
                    spec=spec,
                    elapsed=0.0,
                    work=cell_weight(spec),
                    from_cache=True,
                    result=results[index],
                ))
            else:
                pending.append(_PendingCell(
                    index=index,
                    spec=spec,
                    kind=get_experiment(spec.kind),
                    plan=self._shard_plan(spec),
                ))

        if pending:
            total_tasks = sum(
                len(cell.plan) if cell.plan else 1 for cell in pending
            )
            if self.workers == 1 or total_tasks == 1:
                self._run_serial(pending, results)
            else:
                self._run_parallel(pending, results)

        assert all(result is not None for result in results)
        return CampaignResult(cells=[r for r in results if r is not None])

    def _shard_plan(self, spec: ExperimentSpec) -> Optional[ShardPlan]:
        """The cell's shard plan, or None to execute it whole."""
        if self.max_shards_per_cell <= 1:
            return None
        kind = get_experiment(spec.kind)
        if not kind.shardable or spec.num_samples <= 0:
            return None
        plan = kind.plan_shards(spec, self.max_shards_per_cell)
        return plan if len(plan) > 1 else None

    def _merge(self, cell: _PendingCell) -> Any:
        """Merge a sharded cell's partials (shard order, not completion
        order) into the payload an unsharded run would produce."""
        assert cell.plan is not None
        start = time.perf_counter()
        parts = [cell.parts[i] for i in range(len(cell.plan))]
        payload = cell.kind.merge_shards(cell.spec, parts)
        cell.elapsed += time.perf_counter() - start
        return payload

    def _finish(
        self,
        results: List[Optional[CellResult]],
        cell: _PendingCell,
        payload: Any,
    ) -> None:
        if self.cache:
            self.cache.put(cell.spec, payload)
        num_shards = len(cell.plan) if cell.plan else 1
        results[cell.index] = CellResult(
            spec=cell.spec,
            payload=payload,
            elapsed=cell.elapsed,
            num_shards=num_shards,
        )
        self._report(ProgressEvent(
            event="cell",
            spec=cell.spec,
            elapsed=cell.elapsed,
            # Sharded cells already reported their work shard by shard.
            work=0 if cell.plan else cell_weight(cell.spec),
            result=results[cell.index],
        ))

    def _shard_done(
        self, cell: _PendingCell, shard: Shard, payload: Any, elapsed: float
    ) -> None:
        cell.parts[shard.index] = payload
        cell.elapsed += elapsed
        self._report(ProgressEvent(
            event="shard",
            spec=cell.spec,
            elapsed=elapsed,
            work=shard.num_samples,
            shard=shard,
        ))

    def _run_serial(
        self,
        pending: Sequence[_PendingCell],
        results: List[Optional[CellResult]],
    ) -> None:
        for cell in pending:
            if cell.plan is None:
                payload, elapsed = _execute_timed(cell.kind.run, cell.spec)
                cell.elapsed = elapsed
            else:
                for shard in cell.plan:
                    part, elapsed = _execute_shard_timed(
                        cell.kind.run_shard, cell.spec, shard
                    )
                    self._shard_done(cell, shard, part, elapsed)
                payload = self._merge(cell)
            self._finish(results, cell, payload)

    def _run_parallel(
        self,
        pending: Sequence[_PendingCell],
        results: List[Optional[CellResult]],
    ) -> None:
        total_tasks = sum(
            len(cell.plan) if cell.plan else 1 for cell in pending
        )
        max_workers = min(self.workers, total_tasks)
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures: Dict[Any, Tuple[_PendingCell, Optional[Shard]]] = {}
            for cell in pending:
                if cell.plan is None:
                    future = pool.submit(
                        _execute_timed, cell.kind.run, cell.spec
                    )
                    futures[future] = (cell, None)
                else:
                    for shard in cell.plan:
                        future = pool.submit(
                            _execute_shard_timed,
                            cell.kind.run_shard,
                            cell.spec,
                            shard,
                        )
                        futures[future] = (cell, shard)
            # Completion order, so finished cells hit the cache (and
            # the progress callback) immediately instead of waiting
            # behind a slow earlier cell.  Shard partials are keyed by
            # shard index, so the merge below is completion-order
            # independent.
            for future in as_completed(futures):
                cell, shard = futures[future]
                payload, elapsed = future.result()
                if shard is None:
                    cell.elapsed = elapsed
                    self._finish(results, cell, payload)
                else:
                    self._shard_done(cell, shard, payload, elapsed)
                    if len(cell.parts) == len(cell.plan):
                        self._finish(results, cell, self._merge(cell))

    def _report(self, event: ProgressEvent) -> None:
        if self.progress is not None:
            self.progress(event)
