"""Campaign execution: serial or process-parallel, with a result cache.

A *campaign* is a list of :class:`ExperimentSpec` cells.  The
:class:`CampaignRunner` executes them

* **serially** (``workers=1``) in spec order, or
* **in parallel** across a :class:`~concurrent.futures.ProcessPoolExecutor`
  (``workers>1``) — results are bit-identical to the serial run because
  every cell draws exclusively from its own
  :meth:`~repro.campaigns.spec.ExperimentSpec.seed_sequence`, never
  from shared mutable state;

and, when given a ``cache_dir``, skips cells whose results are already
on disk (keyed by :meth:`ExperimentSpec.spec_hash`), so interrupted or
repeated sweeps only pay for unfinished cells.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.campaigns.registry import RunFn, get_experiment
from repro.campaigns.spec import ExperimentSpec

ProgressFn = Callable[["CellResult"], None]


def execute_cell(spec: ExperimentSpec) -> Any:
    """Run one cell and return its payload (module-level: picklable)."""
    return get_experiment(spec.kind).run(spec)


def _execute_timed(run_fn: RunFn, spec: ExperimentSpec) -> Tuple[Any, float]:
    """(payload, compute seconds) for one cell.

    Receives the kind's run function directly rather than re-resolving
    ``spec.kind``: under the ``spawn`` start method a worker process
    has an empty registry apart from the built-ins, but unpickling the
    function reference imports its defining module — which re-runs any
    ``register_experiment`` side effects.  Timing happens here, on the
    worker, so parallel cells report their own compute time rather
    than time-since-pool-start.
    """
    start = time.perf_counter()
    payload = run_fn(spec)
    return payload, time.perf_counter() - start


@dataclass
class CellResult:
    """One executed (or cache-restored) cell."""

    spec: ExperimentSpec
    payload: Any
    elapsed: float
    from_cache: bool = False

    def summary(self) -> Dict[str, Any]:
        """Flat JSON-able record: spec identity + kind-specific fields."""
        record: Dict[str, Any] = {
            "kind": self.spec.kind,
            "setup": self.spec.setup,
            "num_samples": self.spec.num_samples,
            "seed": self.spec.seed,
            "elapsed_s": round(self.elapsed, 3),
            "from_cache": self.from_cache,
        }
        record.update(dict(self.spec.params))
        kind = get_experiment(self.spec.kind)
        record.update(kind.summarize(self.spec, self.payload))
        return record


@dataclass
class CampaignResult:
    """All cells of one campaign, in spec order."""

    cells: List[CellResult] = field(default_factory=list)

    def __iter__(self) -> Iterator[CellResult]:
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def payloads(self) -> List[Any]:
        return [cell.payload for cell in self.cells]

    def by_setup(self) -> Dict[str, Any]:
        """``{setup name: payload}`` (requires unique setups)."""
        table: Dict[str, Any] = {}
        for cell in self.cells:
            name = cell.spec.setup
            if name is None:
                raise ValueError(f"cell {cell.spec.cell_id} has no setup")
            if name in table:
                raise ValueError(f"duplicate setup {name!r} in campaign")
            table[name] = cell.payload
        return table

    def summaries(self) -> List[Dict[str, Any]]:
        return [cell.summary() for cell in self.cells]

    @property
    def total_elapsed(self) -> float:
        """Sum of per-cell compute time (not wall clock when parallel)."""
        return sum(cell.elapsed for cell in self.cells)

    @property
    def cache_hits(self) -> int:
        return sum(1 for cell in self.cells if cell.from_cache)


class ResultCache:
    """Pickle-per-cell on-disk cache keyed by the stable spec hash."""

    def __init__(self, cache_dir: str) -> None:
        self.cache_dir = cache_dir
        os.makedirs(cache_dir, exist_ok=True)

    def _path(self, spec: ExperimentSpec) -> str:
        return os.path.join(self.cache_dir, spec.spec_hash() + ".pkl")

    def get(self, spec: ExperimentSpec) -> Optional[Any]:
        """The cached payload, or None on miss/corruption.

        Any load failure — truncated pickles, but also stale entries
        referencing payload classes a newer version renamed or moved
        (AttributeError/ImportError) — degrades to a recompute rather
        than aborting the campaign.
        """
        path = self._path(spec)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except Exception:
            return None

    def put(self, spec: ExperimentSpec, payload: Any) -> None:
        """Store atomically (write-then-rename) so readers never see
        a partial pickle."""
        path = self._path(spec)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.cache_dir, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise


class CampaignRunner:
    """Executes campaigns of experiment cells.

    Parameters
    ----------
    workers:
        1 = serial in-process execution; >1 = a process pool of that
        size.  Payloads are identical either way.
    cache_dir:
        Directory for the on-disk result cache; None disables caching.
    progress:
        Optional callback invoked with each finished :class:`CellResult`
        (in completion order when parallel).
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.progress = progress

    # -- execution ---------------------------------------------------------

    def run(self, specs: Sequence[ExperimentSpec]) -> CampaignResult:
        """Execute every cell, returning results in spec order."""
        specs = list(specs)
        # Validate kinds up front: a typo should fail before any
        # (possibly hours-long) cell executes.
        for spec in specs:
            get_experiment(spec.kind)

        results: List[Optional[CellResult]] = [None] * len(specs)
        pending: List[int] = []
        for index, spec in enumerate(specs):
            cached = self.cache.get(spec) if self.cache else None
            if cached is not None:
                results[index] = CellResult(
                    spec=spec, payload=cached, elapsed=0.0, from_cache=True
                )
                self._report(results[index])
            else:
                pending.append(index)

        if pending:
            if self.workers == 1 or len(pending) == 1:
                self._run_serial(specs, pending, results)
            else:
                self._run_parallel(specs, pending, results)

        assert all(result is not None for result in results)
        return CampaignResult(cells=[r for r in results if r is not None])

    def _finish(
        self,
        results: List[Optional[CellResult]],
        index: int,
        spec: ExperimentSpec,
        payload: Any,
        elapsed: float,
    ) -> None:
        if self.cache:
            self.cache.put(spec, payload)
        results[index] = CellResult(
            spec=spec, payload=payload, elapsed=elapsed
        )
        self._report(results[index])

    def _run_serial(
        self,
        specs: Sequence[ExperimentSpec],
        pending: Sequence[int],
        results: List[Optional[CellResult]],
    ) -> None:
        for index in pending:
            run_fn = get_experiment(specs[index].kind).run
            payload, elapsed = _execute_timed(run_fn, specs[index])
            self._finish(results, index, specs[index], payload, elapsed)

    def _run_parallel(
        self,
        specs: Sequence[ExperimentSpec],
        pending: Sequence[int],
        results: List[Optional[CellResult]],
    ) -> None:
        max_workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(
                    _execute_timed,
                    get_experiment(specs[index].kind).run,
                    specs[index],
                ): index
                for index in pending
            }
            # Completion order, so finished cells hit the cache (and
            # the progress callback) immediately instead of waiting
            # behind a slow earlier cell.
            for future in as_completed(futures):
                index = futures[future]
                payload, elapsed = future.result()
                self._finish(results, index, specs[index], payload, elapsed)

    def _report(self, cell: Optional[CellResult]) -> None:
        if self.progress is not None and cell is not None:
            self.progress(cell)
