"""Campaign execution: backend-agnostic, durable, streaming.

A *campaign* is a list of :class:`ExperimentSpec` cells.  The
:class:`CampaignRunner` turns them into self-describing work units —
one per whole cell, or one per :class:`~repro.core.batch.Shard` of a
sharded cell — and executes them on an
:class:`~repro.backends.base.ExecutionBackend`:

* ``workers=1`` → :class:`~repro.backends.local.SerialBackend`
  (in-process, spec order — the reference semantics),
* ``workers>1`` → :class:`~repro.backends.local.ProcessPoolBackend`,
* any explicit ``backend=`` — e.g.
  :class:`~repro.backends.workqueue.WorkQueueBackend`, which ships
  units to independent ``repro worker`` processes through a
  filesystem queue.

Results are bit-identical on every backend and for any completion
order, because each unit draws exclusively from randomness keyed to
its spec (and, for shards, to absolute sample positions) — never from
shared mutable state.

**Durability** (``cache_dir``): finished cells are skipped on re-runs
(keyed by :meth:`ExperimentSpec.spec_hash`), and *per-shard partials*
are persisted as each shard completes — an interrupted big cell
resumes mid-cell from its completed shards instead of recollecting
them.  All cache writes are atomic (temp file + fsync + rename), so a
crash can never leave a truncated entry that poisons later hits.

**Early stopping** (``early_stop=True``): kinds may define a
``should_stop`` hook that rules on each merged contiguous-prefix
payload; once it fires, the cell's remaining shards are cancelled on
the backend (each built-in backend drops its not-yet-running units —
stragglers already executing are discarded on arrival) and the cell
finishes early with the decided prefix as its payload, marked
:attr:`CellResult.early_stopped` and cached at its decided-at sample
count (an entry only other early-stop runs accept — a full-budget
runner recomputes it).

**Progress**: the ``progress`` callback receives a
:class:`ProgressEvent` for every completed unit — each shard, each
cell, each cache-restored cell *and* each cache-restored shard (marked
``from_cache`` so ETA math can count them complete without letting
their zero cost skew the throughput estimate).  With
``stream_partials=True``, kinds that define a ``merge_partial`` hook
additionally emit ``"partial"`` events carrying the merged payload of
the contiguous shard prefix completed so far — incremental
attack/pWCET results long before the cell finishes.
"""

from __future__ import annotations

import inspect
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.campaigns.registry import (
    ExperimentKind,
    KernelResolution,
    get_experiment,
)
from repro.campaigns.spec import ExperimentSpec
from repro.common.fsio import atomic_write_bytes
from repro.core.batch import Shard, ShardPlan, ShardPolicy

if TYPE_CHECKING:  # runtime import is deferred: backends import us
    from repro.backends.base import ExecutionBackend

ProgressFn = Callable[["ProgressEvent"], None]


def execute_cell(spec: ExperimentSpec) -> Any:
    """Run one cell and return its payload (module-level: picklable)."""
    return get_experiment(spec.kind).run(spec)


def _plan_hook_accepts_policy(hook: Any) -> bool:
    """Whether a ``plan_shards`` hook takes the policy argument.

    Decided by signature, not by try/except TypeError: a retry-style
    probe would re-invoke the hook (doubling its work — the bernstein
    planner builds a whole case study) and mask TypeErrors raised
    *inside* a modern hook.  Unintrospectable callables are assumed
    modern.
    """
    try:
        params = list(inspect.signature(hook).parameters.values())
    except (TypeError, ValueError):
        return True
    if any(p.kind is p.VAR_POSITIONAL for p in params):
        return True
    positional = [
        p for p in params
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    return len(positional) >= 3


@dataclass
class CellResult:
    """One executed (or cache-restored) cell."""

    spec: ExperimentSpec
    payload: Any
    #: Compute seconds: one timed execution for whole cells; for
    #: sharded cells the *sum* over freshly-computed shards plus the
    #: merge — i.e. total CPU cost, which exceeds wall clock when
    #: shards ran concurrently (cache restores report 0).
    elapsed: float
    from_cache: bool = False
    #: Shards the cell was split into (1 = executed whole).
    num_shards: int = 1
    #: Shards restored from persisted partials instead of recomputed.
    shards_restored: int = 0
    #: The cell's ``should_stop`` hook decided its verdict on a
    #: contiguous shard prefix; the payload covers only the samples up
    #: to that decision point (its decided-at count), and the
    #: remaining shards were cancelled, never computed.
    early_stopped: bool = False

    def summary(self) -> Dict[str, Any]:
        """Flat JSON-able record: spec identity + kind-specific fields."""
        record: Dict[str, Any] = {
            "kind": self.spec.kind,
            "setup": self.spec.setup,
            "num_samples": self.spec.num_samples,
            "seed": self.spec.seed,
            "elapsed_s": round(self.elapsed, 3),
            "from_cache": self.from_cache,
        }
        if self.early_stopped:
            record["early_stopped"] = True
        record.update(dict(self.spec.params))
        kind = get_experiment(self.spec.kind)
        record.update(kind.summarize(self.spec, self.payload))
        return record


@dataclass(frozen=True)
class ProgressEvent:
    """One completed unit of campaign progress.

    ``event`` is ``"cell"`` (a cell finished — fresh, merged, or
    cache-restored), ``"shard"`` (one shard of a sharded cell finished
    or was restored from a persisted partial), or ``"partial"`` (a
    streaming merge of the contiguous shard prefix completed so far —
    carries ``partial``/``summary``, see
    :attr:`CampaignRunner.stream_partials`).  ``work`` is the number
    of samples this event newly completes: shard events carry their
    shard's size and the final merged-cell event carries whatever the
    shards did not already report — 0 for a fully-computed sharded
    cell, the *skipped* remainder for an early-stopped one — so
    consumers summing ``work`` never double-count and always reach the
    campaign total (partial events carry 0 — they re-package work
    already counted shard by shard); cells executed whole (or restored
    from cache) carry the full cell weight.  ``elapsed`` is the unit's
    compute seconds (for a sharded cell's final event: the sum over
    its shards plus the merge — CPU cost, not wall clock).
    """

    event: str
    spec: ExperimentSpec
    elapsed: float
    work: int
    from_cache: bool = False
    shard: Optional[Shard] = None
    result: Optional[CellResult] = None
    #: "partial" events: merged payload of shards ``0..shards_done-1``.
    partial: Optional[Any] = None
    #: "partial" events: the kind's flat summary of ``partial``.
    summary: Optional[Dict[str, Any]] = None
    #: "partial" events: contiguous shards merged, out of shards_total.
    shards_done: int = 0
    shards_total: int = 0

    @property
    def label(self) -> str:
        """Human-readable unit label for progress lines."""
        if self.event == "partial":
            return (
                f"{self.spec.cell_id} "
                f"partial {self.shards_done}/{self.shards_total}"
            )
        if self.shard is not None:
            # The range doubles as a shard-size readout, so progress
            # lines show adaptive geometry (small lead, growing tail).
            return (
                f"{self.spec.cell_id} "
                f"shard {self.shard.index + 1}/{self.shard.num_shards} "
                f"[{self.shard.start},{self.shard.end})"
            )
        return self.spec.cell_id


def cell_weight(spec: ExperimentSpec) -> int:
    """Progress weight of one cell (≥ 1 even for sample-less kinds)."""
    return max(spec.num_samples, 1)


@dataclass
class CampaignResult:
    """All cells of one campaign, in spec order."""

    cells: List[CellResult] = field(default_factory=list)

    def __iter__(self) -> Iterator[CellResult]:
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def payloads(self) -> List[Any]:
        return [cell.payload for cell in self.cells]

    def by_setup(self) -> Dict[str, Any]:
        """``{setup name: payload}`` (requires unique setups)."""
        table: Dict[str, Any] = {}
        for cell in self.cells:
            name = cell.spec.setup
            if name is None:
                raise ValueError(f"cell {cell.spec.cell_id} has no setup")
            if name in table:
                raise ValueError(f"duplicate setup {name!r} in campaign")
            table[name] = cell.payload
        return table

    def summaries(self) -> List[Dict[str, Any]]:
        return [cell.summary() for cell in self.cells]

    @property
    def total_elapsed(self) -> float:
        """Sum of per-cell compute time (not wall clock when parallel)."""
        return sum(cell.elapsed for cell in self.cells)

    @property
    def cache_hits(self) -> int:
        return sum(1 for cell in self.cells if cell.from_cache)


class ResultCache:
    """Pickle-per-cell on-disk cache keyed by the stable spec hash.

    Besides whole-cell payloads it stores *per-shard partials*
    (``<hash>.shard.<i>of<k>.<start>-<end>.pkl``) so an interrupted
    sharded cell resumes from its completed shards; partials are
    swept once the full cell payload lands.  Every write is atomic
    (temp file + fsync + rename) — a crash at any instant can leave a
    stray temp file, never a truncated entry, so later runs can never
    be poisoned by a half-written cache hit.
    """

    def __init__(self, cache_dir: str) -> None:
        self.cache_dir = cache_dir
        os.makedirs(cache_dir, exist_ok=True)

    def _path(self, spec: ExperimentSpec) -> str:
        return os.path.join(self.cache_dir, spec.spec_hash() + ".pkl")

    def _shard_prefix(self, spec: ExperimentSpec) -> str:
        return spec.spec_hash() + ".shard."

    def _shard_path(self, spec: ExperimentSpec, shard: Shard) -> str:
        return os.path.join(
            self.cache_dir,
            f"{self._shard_prefix(spec)}"
            f"{shard.index}of{shard.num_shards}."
            f"{shard.start}-{shard.end}.pkl",
        )

    def _load(self, path: str) -> Optional[Any]:
        """Unpickle ``path``, or None on any failure.

        Load failures — stale entries referencing payload classes a
        newer version renamed or moved (AttributeError/ImportError),
        truncated documents from a torn write on a shared filesystem —
        degrade to a recompute rather than aborting the campaign.  A
        file that *exists but cannot load* is additionally moved to a
        ``corrupt/`` subdirectory: left in place it would make
        ``has()`` (and every ``--dry-run`` plan) keep advertising an
        entry that silently recomputes on each run, and the broken
        bytes would be re-parsed — and re-failed — forever instead of
        being preserved once for diagnosis.
        """
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            self._quarantine(path)
            return None

    def _quarantine(self, path: str) -> None:
        """Move an unloadable cache file into ``corrupt/`` (atomic,
        best effort — quarantine trouble must never fail a run)."""
        corrupt_dir = os.path.join(self.cache_dir, "corrupt")
        try:
            os.makedirs(corrupt_dir, exist_ok=True)
            os.replace(
                path,
                os.path.join(
                    corrupt_dir,
                    f"{os.path.basename(path)}.{time.time_ns():x}",
                ),
            )
        except OSError:
            pass

    def _early_marker_path(self, spec_hash: str) -> str:
        return os.path.join(self.cache_dir, spec_hash + ".early")

    def has(self, spec: ExperimentSpec) -> bool:
        """Whether a whole-cell entry exists (without loading it)."""
        return os.path.exists(self._path(spec))

    def is_early_stopped(self, spec: ExperimentSpec) -> bool:
        """Whether the cell's entry holds a truncated decided-at
        payload — a cheap sidecar-marker check, no payload load, so
        planning stays O(cells) rather than O(cached bytes)."""
        return os.path.exists(self._early_marker_path(spec.spec_hash()))

    def get_record(
        self, spec: ExperimentSpec
    ) -> Optional[Tuple[Any, bool]]:
        """(payload, early_stopped) or None on miss/corruption.

        The early-stop marker rides beside the entry so a warm-cache
        rerun reports the restored cell exactly like the run that
        computed it — a truncated decided-at payload must not
        masquerade as a full-budget result.
        """
        payload = self._load(self._path(spec))
        if payload is None:
            return None
        return payload, self.is_early_stopped(spec)

    def get(self, spec: ExperimentSpec) -> Optional[Any]:
        """The cached payload, or None on miss/corruption."""
        return self._load(self._path(spec))

    def put(
        self,
        spec: ExperimentSpec,
        payload: Any,
        *,
        early_stopped: bool = False,
    ) -> None:
        """Store atomically so readers never see a partial pickle.

        ``early_stopped`` is recorded as a sidecar marker file, not
        inside the pickle.  Write ordering makes a crash at any
        instant safe: the marker lands *before* an early-stopped
        entry (a stray marker without its entry is inert) and is
        removed *after* a full-budget entry lands (a stale marker
        merely costs one recompute, never a truncated result served
        as a full one).
        """
        marker = self._early_marker_path(spec.spec_hash())
        if early_stopped:
            atomic_write_bytes(marker, b"")
        atomic_write_bytes(
            self._path(spec),
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )
        if not early_stopped:
            try:
                os.unlink(marker)
            except FileNotFoundError:
                pass

    # -- per-shard partials --------------------------------------------------

    def put_shard(
        self, spec: ExperimentSpec, shard: Shard, payload: Any
    ) -> None:
        """Persist one shard's partial payload (atomic, like put)."""
        atomic_write_bytes(
            self._shard_path(spec, shard),
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def get_shards(
        self, spec: ExperimentSpec, plan: ShardPlan
    ) -> Dict[int, Any]:
        """``{shard index: partial payload}`` for the plan's shards.

        Only exact matches count: a partial is keyed by its full
        identity (index, shard count, sample range), so partials from
        a run with a different ``max_shards_per_cell`` are ignored
        rather than mis-merged (they are swept when the cell
        finishes).  Unreadable partials degrade to recomputes.
        """
        restored: Dict[int, Any] = {}
        for shard in plan:
            payload = self._load(self._shard_path(spec, shard))
            if payload is not None:
                restored[shard.index] = payload
        return restored

    def count_shards(self, spec: ExperimentSpec, plan: ShardPlan) -> int:
        """How many of the plan's shards have persisted partials."""
        return sum(
            1 for shard in plan
            if os.path.exists(self._shard_path(spec, shard))
        )

    def clear_shards(self, spec: ExperimentSpec) -> None:
        """Sweep every persisted partial of the cell (any plan)."""
        prefix = self._shard_prefix(spec)
        for name in os.listdir(self.cache_dir):
            if name.startswith(prefix):
                try:
                    os.unlink(os.path.join(self.cache_dir, name))
                except FileNotFoundError:
                    pass

    # -- garbage collection --------------------------------------------------

    def gc(self, max_age_days: float) -> "CacheGCStats":
        """Sweep stale entries from a long-lived shared cache.

        Removes whole-cell entries and shard partials whose mtime is
        older than ``max_age_days`` days, plus *orphaned* partials —
        shards whose *full-budget* whole-cell entry already landed
        (normally swept at merge time, but a crash between ``put`` and
        ``clear_shards`` can leave them behind).  Partials living
        beside an early-stopped entry are **not** orphans: a
        full-budget run ignores that entry and may be mid-resume on
        exactly those partials.  Age-based only, by design: the cache
        is content-addressed, so there is no LRU bookkeeping to
        maintain, and deleting a live entry merely costs a recompute.
        """
        if max_age_days < 0:
            raise ValueError("max_age_days must be non-negative")
        cutoff = time.time() - max_age_days * 86400.0
        removed_cells = removed_partials = freed = 0
        names = sorted(os.listdir(self.cache_dir))
        for name in names:
            if not name.endswith(".pkl"):
                continue
            path = os.path.join(self.cache_dir, name)
            try:
                stat = os.stat(path)
            except FileNotFoundError:
                continue
            is_partial = ".shard." in name
            if is_partial:
                spec_hash = name.split(".shard.", 1)[0]
            else:
                spec_hash = name[: -len(".pkl")]
            orphaned = (
                is_partial
                and os.path.exists(
                    os.path.join(self.cache_dir, spec_hash + ".pkl")
                )
                and not os.path.exists(self._early_marker_path(spec_hash))
            )
            if stat.st_mtime >= cutoff and not orphaned:
                continue
            try:
                os.unlink(path)
            except FileNotFoundError:
                continue
            freed += stat.st_size
            if is_partial:
                removed_partials += 1
            else:
                removed_cells += 1
                # The marker follows its entry out.
                try:
                    os.unlink(self._early_marker_path(spec_hash))
                except FileNotFoundError:
                    pass
        # Sweep markers whose entry is gone.  A marker is removed with
        # its entry above (the two are GC'd as a unit); an *orphaned*
        # marker — entry unlinked by a crashed sweep, a manual delete,
        # or a put() that died between marker and entry — is not just
        # litter: while it lingers, is_early_stopped() keeps answering
        # True for a spec hash with nothing cached, forcing every
        # full-budget run at that hash into a spurious recompute.  So
        # orphans are swept as soon as they outlive the put() grace
        # window (marker lands moments before its entry; a concurrent
        # gc must not unlink it inside that window, or an entry landing
        # without its marker would serve a truncated payload as a full
        # result) — NOT kept for max_age_days like real entries.
        marker_cutoff = time.time() - 300.0
        for name in names:
            if not name.endswith(".early"):
                continue
            entry = name[: -len(".early")] + ".pkl"
            if os.path.exists(os.path.join(self.cache_dir, entry)):
                continue
            path = os.path.join(self.cache_dir, name)
            try:
                if os.stat(path).st_mtime < marker_cutoff:
                    os.unlink(path)
            except FileNotFoundError:
                pass
        return CacheGCStats(
            removed_cells=removed_cells,
            removed_partials=removed_partials,
            freed_bytes=freed,
        )


@dataclass(frozen=True)
class CacheGCStats:
    """What one :meth:`ResultCache.gc` sweep removed."""

    removed_cells: int
    removed_partials: int
    freed_bytes: int


@dataclass
class _PendingCell:
    """Book-keeping for one not-yet-finished cell."""

    index: int
    spec: ExperimentSpec
    kind: ExperimentKind
    plan: Optional[ShardPlan] = None
    parts: Dict[int, Any] = field(default_factory=dict)
    elapsed: float = 0.0
    restored: int = 0
    #: Shards covered by the last merged contiguous prefix (streamed
    #: and/or evaluated for early stopping).
    partial_done: int = 0
    #: Sample work already reported through shard progress events.
    reported_work: int = 0
    #: unit_id per shard index (cancellation bookkeeping).
    unit_ids: Dict[int, str] = field(default_factory=dict)
    #: The cell finished (merged, restored or early-stopped); any
    #: straggler shard results still arriving are discarded.
    done: bool = False


@dataclass(frozen=True)
class CellPlan:
    """One cell's execution plan (the ``--dry-run`` unit of output)."""

    spec: ExperimentSpec
    #: A whole-cell cache entry exists: the cell will be restored.
    cached: bool
    #: The shard plan a fresh execution would use (None = runs whole).
    plan: Optional[ShardPlan] = None
    #: Shards with persisted partials (restored, not recomputed).
    shards_cached: int = 0
    #: Human-readable stopping rule for early-stop-capable kinds
    #: (None = the kind defines no ``should_stop`` hook).
    stop_rule: Optional[str] = None
    #: Shard-geometry label (the runner's :class:`ShardPolicy`) for
    #: sharded cells; None when the cell runs whole.
    geometry: Optional[str] = None
    #: The execution kernel ("vector"/"scalar") the cell resolves to
    #: — the kind's ``resolve_kernel`` verdict on the spec's ``kernel``
    #: hint; None when the kind does not report one.  Informational:
    #: kernels change throughput, never payloads.
    kernel: Optional[str] = None
    #: Machine-readable reason a requested/auto vector kernel fell back
    #: to scalar (None when in-envelope or not reported) — shown in the
    #: ``--dry-run`` kernel column and journaled as a
    #: ``kernel_fallback`` event so fallbacks are never silent.
    kernel_reason: Optional[str] = None

    @property
    def num_shards(self) -> int:
        return len(self.plan) if self.plan is not None else 1


def _resolved_kernel(
    kind: ExperimentKind, spec: ExperimentSpec
) -> "Tuple[Optional[str], Optional[str]]":
    """``(kernel, fallback_reason)`` from the kind's resolver.

    Normalizes the two resolver signatures: a bare kernel name (legacy,
    no reason travels with it) or a :class:`KernelResolution`.
    """
    if kind.resolve_kernel is None:
        return None, None
    resolved = kind.resolve_kernel(spec)
    if isinstance(resolved, KernelResolution):
        return resolved.kernel, resolved.reason
    return resolved, None


class CampaignRunner:
    """Executes campaigns of experiment cells.

    Parameters
    ----------
    workers:
        Sizes the default backend: 1 = serial in-process execution,
        >1 = a process pool of that size.  Ignored when ``backend``
        is given.  Payloads are identical either way.
    cache_dir:
        Directory for the on-disk result cache; None disables caching
        (including per-shard partials and mid-cell resume).
    progress:
        Optional callback invoked with each :class:`ProgressEvent` —
        per-shard and per-cell completions, in completion order when
        parallel, cache restores included (marked ``from_cache``).
    max_shards_per_cell:
        Upper bound on the intra-cell fan-out of shardable kinds; 1
        disables sharding.  All backends and shard counts produce
        bit-identical payloads.
    backend:
        An explicit :class:`~repro.backends.base.ExecutionBackend` to
        run units on (e.g. a
        :class:`~repro.backends.workqueue.WorkQueueBackend`).  The
        caller owns its lifecycle — the runner submits and drains but
        never closes it, so one backend can serve many campaigns.
    shard_policy:
        The :class:`~repro.core.batch.ShardPolicy` every shardable
        kind's ``plan_shards`` hook receives — ``even`` (default) or
        ``adaptive`` geometry (small leading shards growing
        geometrically, so early-stop campaigns decide on the first
        small prefix).  Geometry never changes payloads: all policies
        merge bit-identically.
    stream_partials:
        Emit ``"partial"`` progress events with the merged payload of
        each cell's contiguous completed-shard prefix (kinds with a
        ``merge_partial`` hook only).  Best-effort: a failing partial
        merge is skipped, never fatal.
    early_stop:
        Evaluate each kind's optional ``should_stop`` hook on the
        merged contiguous-prefix payload as shards complete; once it
        fires, the cell's remaining shards are cancelled on the
        backend (best effort — already-running units may still finish
        and are discarded) and the cell finishes with the decided
        prefix payload, marked :attr:`CellResult.early_stopped`.  The
        cache stores that early-stopped payload (with its decided-at
        sample count) as the cell's entry; it satisfies later
        ``early_stop=True`` runners, while a full-budget runner
        recomputes (and overwrites) it.  Only sharded cells can stop
        early — a whole-cell unit has no partials to rule on.
    telemetry:
        Optional :class:`~repro.telemetry.sink.TelemetrySink`
        receiving typed span events (unit queued/done with phase
        timings, merges, cache hits and partial restores, early-stop
        decisions, campaign start/end) alongside the ``progress``
        callback.  Default None builds no events at all; enabling it
        never changes a payload byte.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        progress: Optional[ProgressFn] = None,
        max_shards_per_cell: int = 1,
        backend: Optional["ExecutionBackend"] = None,
        shard_policy: Optional[ShardPolicy] = None,
        stream_partials: bool = False,
        early_stop: bool = False,
        telemetry=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_shards_per_cell < 1:
            raise ValueError("max_shards_per_cell must be >= 1")
        self.workers = workers
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.progress = progress
        self.max_shards_per_cell = max_shards_per_cell
        self.backend = backend
        self.shard_policy = (
            shard_policy if shard_policy is not None else ShardPolicy()
        )
        self.stream_partials = stream_partials
        self.early_stop = early_stop
        #: Optional :class:`repro.telemetry.sink.TelemetrySink`.
        #: Default None is *zero-cost*: no event dict is ever built.
        #: Enabling it is bit-identity-neutral — events observe
        #: execution, payloads never depend on them.
        self.telemetry = telemetry
        #: Wall-clock submit time per outstanding unit id — the
        #: queued→running phase split in unit_done spans.
        self._queued_at: Dict[str, float] = {}

    def _emit(self, type_: str, **fields: Any) -> None:
        """Emit one telemetry event (no-op without a sink)."""
        if self.telemetry is None:
            return
        from repro.telemetry.events import make_event

        self.telemetry.emit(make_event(type_, **fields))

    # -- planning ----------------------------------------------------------

    def _shard_plan(self, spec: ExperimentSpec) -> Optional[ShardPlan]:
        """The cell's shard plan, or None to execute it whole."""
        if self.max_shards_per_cell <= 1:
            return None
        kind = get_experiment(spec.kind)
        if not kind.shardable or spec.num_samples <= 0:
            return None
        if _plan_hook_accepts_policy(kind.plan_shards):
            plan = kind.plan_shards(
                spec, self.max_shards_per_cell, self.shard_policy
            )
        else:
            # A kind registered against the pre-policy two-argument
            # hook (out-of-tree kinds): it plans its own geometry and
            # simply cannot honour a shard policy.
            plan = kind.plan_shards(spec, self.max_shards_per_cell)
        return plan if len(plan) > 1 else None

    def plan(self, specs: Sequence[ExperimentSpec]) -> List[CellPlan]:
        """What :meth:`run` would do, without executing anything.

        For each cell: whether the whole-cell cache already covers it,
        the shard plan a fresh execution would use, and how many of
        those shards have persisted partials — the ``--dry-run`` view
        of a campaign (what a distributed run would dispatch).
        """
        plans: List[CellPlan] = []
        for spec in specs:
            kind = get_experiment(spec.kind)
            cached = self.cache.has(spec) if self.cache else False
            if cached and not self.early_stop \
                    and self.cache.is_early_stopped(spec):
                # Mirror run(): an early-stopped entry does not satisfy
                # a full-budget runner, so the cell would recompute.
                cached = False
            shard_plan = None if cached else self._shard_plan(spec)
            shards_cached = (
                self.cache.count_shards(spec, shard_plan)
                if self.cache and shard_plan is not None
                else 0
            )
            # Only advertise a stopping rule the run would apply: a
            # runner without early_stop executes the full budget, and
            # the plan must say so.
            stop_rule = None
            if self.early_stop and kind.should_stop is not None:
                stop_rule = (
                    kind.stop_rule(spec)
                    if kind.stop_rule is not None
                    else "enabled"
                )
            geometry = None
            if shard_plan is not None:
                # A legacy two-argument hook planned its own geometry
                # — advertising the runner's policy for it would
                # mislabel the very ranges printed beside it.
                geometry = (
                    self.shard_policy.describe()
                    if _plan_hook_accepts_policy(kind.plan_shards)
                    else "kind-defined"
                )
            kernel, kernel_reason = _resolved_kernel(kind, spec)
            plans.append(CellPlan(
                spec=spec,
                cached=cached,
                plan=shard_plan,
                shards_cached=shards_cached,
                stop_rule=stop_rule,
                geometry=geometry,
                kernel=kernel,
                kernel_reason=kernel_reason,
            ))
        return plans

    # -- execution ---------------------------------------------------------

    def _backend_label(self) -> str:
        if self.backend is not None:
            return type(self.backend).__name__
        return "serial" if self.workers == 1 else f"pool({self.workers})"

    def run(self, specs: Sequence[ExperimentSpec]) -> CampaignResult:
        """Execute every cell, returning results in spec order."""
        specs = list(specs)
        # Validate kinds up front: a typo should fail before any
        # (possibly hours-long) cell executes.
        for spec in specs:
            get_experiment(spec.kind)
        run_started = time.monotonic()
        self._emit(
            "campaign_start",
            cells=len(specs),
            backend=self._backend_label(),
            total_work=sum(cell_weight(spec) for spec in specs),
        )

        results: List[Optional[CellResult]] = [None] * len(specs)
        pending: List[_PendingCell] = []
        for index, spec in enumerate(specs):
            cached = None
            if self.cache is not None and (
                self.early_stop or not self.cache.is_early_stopped(spec)
            ):
                # An early-stopped entry holds a truncated decided-at
                # payload; a runner that did not opt into early
                # stopping promised the full budget, so it recomputes
                # (and overwrites) instead of loading it.
                cached = self.cache.get_record(spec)
            if cached is not None:
                payload, was_early_stopped = cached
                results[index] = CellResult(
                    spec=spec, payload=payload, elapsed=0.0,
                    from_cache=True, early_stopped=was_early_stopped,
                )
                self._emit(
                    "cache_hit", cell=spec.cell_id, kind=spec.kind,
                )
                self._report(ProgressEvent(
                    event="cell",
                    spec=spec,
                    elapsed=0.0,
                    work=cell_weight(spec),
                    from_cache=True,
                    result=results[index],
                ))
                continue
            cell = _PendingCell(
                index=index,
                spec=spec,
                kind=get_experiment(spec.kind),
                plan=self._shard_plan(spec),
            )
            if self.telemetry is not None:
                # Resolve only when a sink listens: probing the vector
                # envelope builds a template cache, and the default
                # telemetry=None path stays zero-cost.
                kernel, reason = _resolved_kernel(cell.kind, spec)
                if reason is not None:
                    self._emit(
                        "kernel_fallback",
                        cell=spec.cell_id,
                        kernel=kernel,
                        reason=reason,
                    )
            self._restore_shards(cell)
            if cell.plan is not None and len(cell.parts) == len(cell.plan):
                # Every shard was persisted before the interruption;
                # only the merge is left.
                self._finish(results, cell, self._merge(cell))
            else:
                pending.append(cell)

        if pending:
            self._execute(pending, results)

        assert all(result is not None for result in results)
        self._emit(
            "campaign_end",
            cells=len(specs),
            elapsed=time.monotonic() - run_started,
        )
        return CampaignResult(cells=[r for r in results if r is not None])

    def _restore_shards(self, cell: _PendingCell) -> None:
        """Adopt persisted shard partials from an interrupted run."""
        if self.cache is None or cell.plan is None:
            return
        restored_before = cell.restored
        for index, payload in sorted(
            self.cache.get_shards(cell.spec, cell.plan).items()
        ):
            cell.parts[index] = payload
            cell.restored += 1
            cell.reported_work += cell.plan[index].num_samples
            self._report(ProgressEvent(
                event="shard",
                spec=cell.spec,
                elapsed=0.0,
                work=cell.plan[index].num_samples,
                from_cache=True,
                shard=cell.plan[index],
            ))
        if cell.restored > restored_before:
            self._emit(
                "partial_restore",
                cell=cell.spec.cell_id,
                shards=cell.restored - restored_before,
                of=len(cell.plan),
            )

    def _make_units(
        self, pending: Sequence[_PendingCell]
    ) -> "List[Tuple[Any, _PendingCell, Optional[Shard]]]":
        from repro.backends.base import WorkUnit

        units: List[Tuple[Any, _PendingCell, Optional[Shard]]] = []
        for cell in pending:
            stem = f"c{cell.index:04d}-{cell.spec.spec_hash()[:12]}"
            if cell.plan is None:
                units.append(
                    (WorkUnit(unit_id=stem, spec=cell.spec), cell, None)
                )
                continue
            for shard in cell.plan:
                unit_id = f"{stem}.{shard.start}-{shard.end}"
                cell.unit_ids[shard.index] = unit_id
                if shard.index in cell.parts:
                    continue  # restored from a persisted partial
                unit = WorkUnit(
                    unit_id=unit_id,
                    spec=cell.spec,
                    shard=shard,
                )
                units.append((unit, cell, shard))
        return units

    def _make_backend(self, num_units: int) -> "ExecutionBackend":
        from repro.backends.local import ProcessPoolBackend, SerialBackend

        if self.workers == 1 or num_units == 1:
            return SerialBackend()
        return ProcessPoolBackend(min(self.workers, num_units))

    def _execute(
        self,
        pending: Sequence[_PendingCell],
        results: List[Optional[CellResult]],
    ) -> None:
        if self.early_stop:
            # Shard partials restored from the cache may already carry
            # a decidable prefix — settle those cells before
            # dispatching any of their remaining shards.
            for cell in pending:
                self._after_prefix_grew(results, cell, backend=None)
            pending = [cell for cell in pending if not cell.done]
            if not pending:
                return
        units = self._make_units(pending)
        by_id = {unit.unit_id: (cell, shard) for unit, cell, shard in units}
        backend = self.backend
        owns_backend = backend is None
        if backend is None:
            backend = self._make_backend(len(units))
        try:
            for unit, cell, _ in units:
                backend.submit(unit)
                if self.telemetry is not None:
                    self._queued_at[unit.unit_id] = time.time()
                    self._emit(
                        "unit_queued",
                        unit=unit.unit_id,
                        cell=cell.spec.cell_id,
                        kind=cell.spec.kind,
                    )
            # Completion order (backend-defined), so finished cells
            # hit the cache and the progress callback immediately
            # instead of waiting behind a slow earlier cell.  Shard
            # partials are keyed by shard index, so the merge below is
            # completion-order independent.
            for result in backend.completions():
                cell, shard = by_id[result.unit.unit_id]
                if self.telemetry is not None:
                    self._emit_unit_done(cell, result)
                if cell.done:
                    # A straggler of an early-stopped cell (its unit
                    # was already running when the cancel landed).
                    continue
                if shard is None:
                    cell.elapsed = result.elapsed
                    self._finish(results, cell, result.payload)
                else:
                    self._shard_done(
                        cell, shard, result.payload, result.elapsed
                    )
                    if len(cell.parts) == len(cell.plan):
                        self._finish(results, cell, self._merge(cell))
                    else:
                        self._after_prefix_grew(results, cell, backend)
        finally:
            if owns_backend:
                backend.close()
            self._queued_at.clear()

    # -- unit completion ---------------------------------------------------

    def _emit_unit_done(self, cell: _PendingCell, result: Any) -> None:
        """Close one unit's span: phase split + worker timings.

        ``queue_wait`` is submit-to-execution-start, from the worker's
        own wall clock when it stamped timings (clamped at 0 against
        cross-host clock skew); the remaining fields ride straight
        from the result doc.
        """
        unit_id = result.unit.unit_id
        queued = self._queued_at.pop(unit_id, None)
        queue_wait = None
        timings = result.timings
        if queued is not None:
            started = (timings or {}).get("started")
            reference = started if started is not None else time.time()
            queue_wait = max(0.0, reference - queued)
        fields: Dict[str, Any] = dict(
            unit=unit_id,
            cell=cell.spec.cell_id,
            kind=cell.spec.kind,
            attempts=getattr(result, "attempts", 1),
            elapsed=result.elapsed,
        )
        if getattr(result, "worker", None) is not None:
            fields["worker"] = result.worker
        if queue_wait is not None:
            fields["queue_wait"] = round(queue_wait, 6)
        if timings is not None:
            fields["timings"] = dict(timings)
        self._emit("unit_done", **fields)

    def _merge(self, cell: _PendingCell) -> Any:
        """Merge a sharded cell's partials (shard order, not completion
        order) into the payload an unsharded run would produce."""
        assert cell.plan is not None
        start = time.perf_counter()
        parts = [cell.parts[i] for i in range(len(cell.plan))]
        payload = cell.kind.merge_shards(cell.spec, parts)
        seconds = time.perf_counter() - start
        cell.elapsed += seconds
        self._emit(
            "merge",
            cell=cell.spec.cell_id,
            shards=len(parts),
            seconds=round(seconds, 6),
        )
        return payload

    def _finish(
        self,
        results: List[Optional[CellResult]],
        cell: _PendingCell,
        payload: Any,
        *,
        early_stopped: bool = False,
    ) -> None:
        cell.done = True
        if self.cache:
            self.cache.put(cell.spec, payload, early_stopped=early_stopped)
            if cell.plan is not None and not early_stopped:
                # The full-budget entry supersedes the partials.  An
                # early-stopped cell keeps its persisted shards: a
                # later full-budget run rejects the truncated entry
                # and resumes from exactly those partials instead of
                # recomputing them (gc's orphan rule protects them
                # for the same reason).
                self.cache.clear_shards(cell.spec)
        num_shards = len(cell.plan) if cell.plan else 1
        results[cell.index] = CellResult(
            spec=cell.spec,
            payload=payload,
            elapsed=cell.elapsed,
            num_shards=num_shards,
            shards_restored=cell.restored,
            early_stopped=early_stopped,
        )
        self._emit(
            "cell_done",
            cell=cell.spec.cell_id,
            kind=cell.spec.kind,
            elapsed=round(cell.elapsed, 6),
            shards=num_shards,
            early_stopped=early_stopped,
        )
        # Sharded cells already reported their work shard by shard;
        # the cell event carries only what they did not — 0 normally,
        # the cancelled remainder when the cell stopped early.
        if cell.plan is None:
            work = cell_weight(cell.spec)
        else:
            work = max(0, cell_weight(cell.spec) - cell.reported_work)
        self._report(ProgressEvent(
            event="cell",
            spec=cell.spec,
            elapsed=cell.elapsed,
            work=work,
            result=results[cell.index],
        ))

    def _shard_done(
        self, cell: _PendingCell, shard: Shard, payload: Any, elapsed: float
    ) -> None:
        cell.parts[shard.index] = payload
        cell.elapsed += elapsed
        cell.reported_work += shard.num_samples
        # Persist before reporting: once an observer saw the shard
        # complete, a crash must not lose it.
        if self.cache is not None:
            self.cache.put_shard(cell.spec, shard, payload)
        self._report(ProgressEvent(
            event="shard",
            spec=cell.spec,
            elapsed=elapsed,
            work=shard.num_samples,
            shard=shard,
        ))

    def _after_prefix_grew(
        self,
        results: List[Optional[CellResult]],
        cell: _PendingCell,
        backend: Optional["ExecutionBackend"],
    ) -> None:
        """React to a grown contiguous shard prefix: stream the merged
        preview and/or rule on early stopping.  One merge serves both;
        merge failures are skippable for previews but disable stopping
        too (an undecidable prefix is simply not decided)."""
        if cell.plan is None:
            return
        wants_stream = (
            self.stream_partials and cell.kind.merge_partial is not None
        )
        wants_stop = (
            self.early_stop and cell.kind.should_stop is not None
        )
        if not (wants_stream or wants_stop):
            return
        done = 0
        while done in cell.parts:
            done += 1
        if done <= cell.partial_done or done >= len(cell.plan):
            # No new contiguous prefix (or the cell is about to merge
            # for real anyway).
            return
        cell.partial_done = done
        try:
            payload = cell.kind.merge_partial(
                cell.spec, [cell.parts[i] for i in range(done)]
            )
        except Exception:
            return  # an unmergeable prefix is simply not ruled on
        if wants_stream:
            # A failing summary only skips the preview line — it must
            # not block the stopping decision, which needs nothing but
            # the merged payload.
            try:
                summary = cell.kind.summarize(cell.spec, payload)
            except Exception:
                pass
            else:
                self._report(ProgressEvent(
                    event="partial",
                    spec=cell.spec,
                    elapsed=0.0,
                    work=0,
                    partial=payload,
                    summary=summary,
                    shards_done=done,
                    shards_total=len(cell.plan),
                ))
        if not wants_stop:
            return
        try:
            stop = bool(cell.kind.should_stop(cell.spec, payload))
        except Exception:
            return  # an erroring rule must never fail the campaign
        if not stop:
            return
        remaining = [
            unit_id
            for index, unit_id in cell.unit_ids.items()
            if index not in cell.parts
        ]
        if backend is not None and remaining:
            backend.cancel_units(remaining)
        # decided_at: the trial count the verdict was reached at — the
        # end of the merged contiguous prefix the rule fired on.
        self._emit(
            "early_stop",
            cell=cell.spec.cell_id,
            decided_at=cell.plan[done - 1].end,
            cancelled=len(remaining),
        )
        self._finish(results, cell, payload, early_stopped=True)

    def _report(self, event: ProgressEvent) -> None:
        if self.progress is not None:
            self.progress(event)
