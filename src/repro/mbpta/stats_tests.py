"""Statistical admission tests used by MBPTA (paper §6.2.2).

MBPTA applies EVT, which requires the execution-time samples to be
independent and identically distributed.  The paper validates both
properties with the Ljung-Box independence test over 20 lags and the
two-sample Kolmogorov-Smirnov identical-distribution test, at the 5%
significance level.  Both tests are implemented here from their
definitions (SciPy provides only the reference chi-square CDF).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class TestResult:
    """Outcome of a hypothesis test."""

    name: str
    statistic: float
    p_value: float
    alpha: float = 0.05

    @property
    def passed(self) -> bool:
        """True when the null hypothesis is *not* rejected."""
        return self.p_value >= self.alpha


def _as_array(samples: Sequence[float]) -> np.ndarray:
    data = np.asarray(samples, dtype=float)
    if data.ndim != 1:
        raise ValueError("samples must be one-dimensional")
    return data


def autocorrelations(samples: Sequence[float], max_lag: int) -> np.ndarray:
    """Sample autocorrelation coefficients r_1 .. r_max_lag."""
    data = _as_array(samples)
    n = data.size
    if max_lag >= n:
        raise ValueError(f"max_lag {max_lag} must be < sample size {n}")
    centered = data - data.mean()
    denominator = float(np.dot(centered, centered))
    if denominator == 0.0:
        # Constant series: autocorrelation undefined; report zeros so a
        # fully deterministic timing profile trivially "passes" LB (the
        # identical-distribution test is what flags such data).
        return np.zeros(max_lag)
    result = np.empty(max_lag)
    for lag in range(1, max_lag + 1):
        result[lag - 1] = float(
            np.dot(centered[:-lag], centered[lag:]) / denominator
        )
    return result


def ljung_box(samples: Sequence[float], lags: int = 20,
              alpha: float = 0.05) -> TestResult:
    """Ljung-Box portmanteau test for independence (Box & Pierce [9]).

    Tests the joint null that all autocorrelations up to ``lags`` are
    zero.  The paper uses 20 simultaneous lags, "a very strong
    independence test" (§6.2.2).
    """
    data = _as_array(samples)
    n = data.size
    if n <= lags + 1:
        raise ValueError(f"need more than {lags + 1} samples, got {n}")
    r = autocorrelations(data, lags)
    q = n * (n + 2) * float(np.sum(r * r / (n - np.arange(1, lags + 1))))
    p_value = float(_scipy_stats.chi2.sf(q, df=lags))
    return TestResult("ljung_box", q, p_value, alpha)


def _ks_asymptotic_p_value(statistic: float, n: int, m: int) -> float:
    """Two-sided asymptotic KS p-value (Kolmogorov distribution tail)."""
    effective_n = n * m / (n + m)
    lam = (math.sqrt(effective_n) + 0.12 + 0.11 / math.sqrt(effective_n))
    lam *= statistic
    if lam <= 0:
        return 1.0
    # Kolmogorov Q-function: 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lam^2).
    total = 0.0
    for k in range(1, 101):
        term = 2.0 * (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * lam * lam)
        total += term
        if abs(term) < 1e-12:
            break
    return min(1.0, max(0.0, total))


def ks_two_sample(first: Sequence[float], second: Sequence[float],
                  alpha: float = 0.05) -> TestResult:
    """Two-sample Kolmogorov-Smirnov identical-distribution test.

    The paper (§6.2.2) applies it to verify the i.d. part of i.i.d.;
    typically the sample is split in two halves (see
    :meth:`repro.mbpta.analysis.MBPTAAnalysis.identical_distribution`).
    """
    a = np.sort(_as_array(first))
    b = np.sort(_as_array(second))
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    everything = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, everything, side="right") / a.size
    cdf_b = np.searchsorted(b, everything, side="right") / b.size
    statistic = float(np.max(np.abs(cdf_a - cdf_b)))
    p_value = _ks_asymptotic_p_value(statistic, a.size, b.size)
    return TestResult("ks_two_sample", statistic, p_value, alpha)


def runs_test(samples: Sequence[float], alpha: float = 0.05) -> TestResult:
    """Wald-Wolfowitz runs test around the median (extra i. check)."""
    data = _as_array(samples)
    median = float(np.median(data))
    above = data > median  # ties count as "below"
    n1 = int(np.sum(above))
    n2 = int(data.size - n1)
    if n1 == 0 or n2 == 0:
        # Degenerate (e.g. constant) series: no evidence of dependence
        # from runs; report a neutral pass.
        return TestResult("runs", 0.0, 1.0, alpha)
    runs = 1 + int(np.sum(above[1:] != above[:-1]))
    expected = 1.0 + 2.0 * n1 * n2 / (n1 + n2)
    variance = (
        2.0 * n1 * n2 * (2.0 * n1 * n2 - n1 - n2)
        / ((n1 + n2) ** 2 * (n1 + n2 - 1.0))
    )
    if variance <= 0:
        return TestResult("runs", 0.0, 1.0, alpha)
    z = (runs - expected) / math.sqrt(variance)
    p_value = 2.0 * float(_scipy_stats.norm.sf(abs(z)))
    return TestResult("runs", z, p_value, alpha)
