"""End-to-end MBPTA pipeline (Figure 1, left).

The industrial MBPTA flow: collect execution-time measurements on the
target, verify the statistical admission criteria (independence and
identical distribution), fit EVT, deliver the pWCET curve.  This module
packages those steps with explicit reporting so examples and benches
can show each stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.mbpta.evt import PWCETCurve, fit_exponential_tail, fit_gumbel_block_maxima
from repro.mbpta.stats_tests import TestResult, ks_two_sample, ljung_box


@dataclass
class MBPTAReport:
    """Everything MBPTA produces for one task."""

    num_samples: int
    independence: TestResult
    identical_distribution: TestResult
    compliant: bool
    curve: Optional[PWCETCurve]
    sample_mean: float
    sample_max: float
    notes: List[str] = field(default_factory=list)

    def pwcet(self, exceedance: float = 1e-12) -> float:
        """pWCET bound at the target exceedance probability."""
        if self.curve is None:
            raise RuntimeError(
                "no pWCET curve: samples failed the admission tests "
                f"({'; '.join(self.notes) or 'unknown reason'})"
            )
        return self.curve.pwcet(exceedance)


class MBPTAAnalysis:
    """Configurable MBPTA analysis run.

    Parameters
    ----------
    alpha:
        Significance level of the admission tests (0.05 in the paper).
    lags:
        Ljung-Box lag count (20 in the paper).
    method:
        ``"pot"`` (peaks over threshold, exponential excesses) or
        ``"block_maxima"`` (Gumbel).
    """

    def __init__(
        self,
        alpha: float = 0.05,
        lags: int = 20,
        method: str = "pot",
        tail_fraction: float = 0.1,
        block_size: int = 50,
    ) -> None:
        if method not in ("pot", "block_maxima"):
            raise ValueError(f"unknown EVT method {method!r}")
        self.alpha = alpha
        self.lags = lags
        self.method = method
        self.tail_fraction = tail_fraction
        self.block_size = block_size

    # -- admission tests ---------------------------------------------------

    def independence(self, samples: Sequence[float]) -> TestResult:
        """Ljung-Box over ``lags`` simultaneous lags (paper §6.2.2)."""
        return ljung_box(samples, lags=self.lags, alpha=self.alpha)

    def identical_distribution(self, samples: Sequence[float]) -> TestResult:
        """Two-sample KS between the two halves of the sample."""
        data = np.asarray(samples, dtype=float)
        half = data.size // 2
        if half < 5:
            raise ValueError("need at least 10 samples for the KS split test")
        return ks_two_sample(data[:half], data[half:], alpha=self.alpha)

    # -- pipeline -------------------------------------------------------------

    def fit(self, samples: Sequence[float]) -> PWCETCurve:
        if self.method == "pot":
            return fit_exponential_tail(samples, tail_fraction=self.tail_fraction)
        return fit_gumbel_block_maxima(samples, block_size=self.block_size)

    def analyse(self, samples: Sequence[float],
                enforce_admission: bool = True) -> MBPTAReport:
        """Run the full MBPTA flow on one sample of execution times.

        With ``enforce_admission`` (default), a curve is only produced
        when both admission tests pass — matching the certification
        argument the paper builds on.  Disable it to inspect the curve
        a non-compliant platform *would* produce.
        """
        data = np.asarray(samples, dtype=float)
        independence = self.independence(data)
        identical = self.identical_distribution(data)
        notes: List[str] = []
        if not independence.passed:
            notes.append(
                f"Ljung-Box rejected independence (p={independence.p_value:.4f})"
            )
        if not identical.passed:
            notes.append(
                f"KS rejected identical distribution (p={identical.p_value:.4f})"
            )
        compliant = independence.passed and identical.passed
        curve: Optional[PWCETCurve] = None
        if compliant or not enforce_admission:
            curve = self.fit(data)
        return MBPTAReport(
            num_samples=int(data.size),
            independence=independence,
            identical_distribution=identical,
            compliant=compliant,
            curve=curve,
            sample_mean=float(data.mean()),
            sample_max=float(data.max()),
            notes=notes,
        )
