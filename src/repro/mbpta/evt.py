"""Extreme Value Theory machinery for pWCET estimation (paper §2.1).

MBPTA (Cucu-Grosjean et al. [10]) fits an extreme-value model to the
upper tail of the observed execution times and reads the pWCET at an
exceedance probability chosen by the safety standard (e.g. 1e-10 per
run in the paper's Figure 1 example, or 1e-12 and beyond for higher
criticality).  We provide the two classic routes:

* **Peaks-over-threshold** with an exponential excess model
  (:func:`fit_exponential_tail`) — the light-tail member of the GPD
  family, appropriate for the bounded jitter of cache-randomized
  hardware and the standard choice in MBPTA industrial practice.
* **Block maxima** with a Gumbel model
  (:func:`fit_gumbel_block_maxima`), the EVT route of the original
  MBPTA paper.

Both produce a :class:`PWCETCurve` mapping execution time to
exceedance probability — the curve drawn in Figure 1 (right).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class ExponentialTailFit:
    """Exponential model of threshold excesses.

    P(X > x) = tail_fraction * exp(-(x - threshold) / scale) for
    x >= threshold.
    """

    threshold: float
    scale: float
    tail_fraction: float
    num_excesses: int

    def exceedance_probability(self, value: float) -> float:
        if value < self.threshold:
            raise ValueError(
                f"value {value} below fitted threshold {self.threshold}"
            )
        if self.scale == 0.0:
            return 0.0 if value > self.threshold else self.tail_fraction
        return self.tail_fraction * math.exp(
            -(value - self.threshold) / self.scale
        )

    def quantile(self, probability: float) -> float:
        """Execution time exceeded with the given probability."""
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        if probability >= self.tail_fraction:
            return self.threshold
        if self.scale == 0.0:
            return self.threshold
        return self.threshold - self.scale * math.log(
            probability / self.tail_fraction
        )


@dataclass(frozen=True)
class GumbelFit:
    """Gumbel (EV type I) model of block maxima.

    P(max <= x) = exp(-exp(-(x - location) / scale)); exceedance
    probabilities are per *block* of ``block_size`` runs.
    """

    location: float
    scale: float
    block_size: int

    def exceedance_probability(self, value: float) -> float:
        z = (value - self.location) / self.scale
        return 1.0 - math.exp(-math.exp(-z))

    def quantile(self, probability: float) -> float:
        if not 0.0 < probability < 1.0:
            raise ValueError("probability must be in (0, 1)")
        return self.location - self.scale * math.log(
            -math.log(1.0 - probability)
        )


@dataclass(frozen=True)
class PWCETCurve:
    """A probabilistic WCET curve: exceedance probability vs. time."""

    fit: object  # ExponentialTailFit or GumbelFit
    sample_max: float

    def exceedance_probability(self, value: float) -> float:
        return self.fit.exceedance_probability(value)

    def pwcet(self, exceedance: float) -> float:
        """The pWCET bound at a target exceedance probability."""
        return self.fit.quantile(exceedance)

    def series(
        self, exceedances: Sequence[float] = (1e-3, 1e-6, 1e-9, 1e-12, 1e-15)
    ) -> List[Tuple[float, float]]:
        """(exceedance probability, pWCET) pairs for plotting/reporting."""
        return [(p, self.pwcet(p)) for p in exceedances]


def fit_exponential_tail(
    samples: Sequence[float], tail_fraction: float = 0.1
) -> PWCETCurve:
    """Peaks-over-threshold fit with exponential excesses.

    ``tail_fraction`` selects the threshold as the corresponding upper
    empirical quantile; the excess mean is the MLE of the exponential
    scale.
    """
    data = np.asarray(samples, dtype=float)
    if data.ndim != 1 or data.size < 20:
        raise ValueError("need at least 20 one-dimensional samples")
    if not 0.0 < tail_fraction < 1.0:
        raise ValueError("tail_fraction must be in (0, 1)")
    threshold = float(np.quantile(data, 1.0 - tail_fraction))
    excesses = data[data > threshold] - threshold
    if excesses.size == 0:
        # Degenerate upper tail (e.g. deterministic times): zero scale.
        fit = ExponentialTailFit(threshold, 0.0, tail_fraction, 0)
        return PWCETCurve(fit=fit, sample_max=float(data.max()))
    scale = float(excesses.mean())
    fit = ExponentialTailFit(
        threshold=threshold,
        scale=scale,
        tail_fraction=float(excesses.size / data.size),
        num_excesses=int(excesses.size),
    )
    return PWCETCurve(fit=fit, sample_max=float(data.max()))


@dataclass(frozen=True)
class GPDTailFit:
    """Generalised Pareto model of threshold excesses.

    P(X > x) = tail_fraction * (1 + shape*(x-threshold)/scale)^(-1/shape)
    for x >= threshold; shape -> 0 recovers the exponential model.
    MBPTA practice requires a non-positive (light or bounded) tail for
    certification; the fit reports the shape so callers can check.
    """

    threshold: float
    scale: float
    shape: float
    tail_fraction: float

    def exceedance_probability(self, value: float) -> float:
        if value < self.threshold:
            raise ValueError(
                f"value {value} below fitted threshold {self.threshold}"
            )
        z = (value - self.threshold) / self.scale
        if abs(self.shape) < 1e-9:
            return self.tail_fraction * math.exp(-z)
        inner = 1.0 + self.shape * z
        if inner <= 0.0:
            return 0.0  # beyond the bounded support (shape < 0)
        return self.tail_fraction * inner ** (-1.0 / self.shape)

    def quantile(self, probability: float) -> float:
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        if probability >= self.tail_fraction:
            return self.threshold
        ratio = probability / self.tail_fraction
        if abs(self.shape) < 1e-9:
            return self.threshold - self.scale * math.log(ratio)
        return self.threshold + self.scale / self.shape * (
            ratio ** (-self.shape) - 1.0
        )


def fit_gpd_tail(
    samples: Sequence[float], tail_fraction: float = 0.1
) -> PWCETCurve:
    """Peaks-over-threshold fit with a GPD excess model.

    Uses probability-weighted moments (Hosking & Wallis), which are
    robust at MBPTA-typical excess counts; degenerate tails fall back
    to a zero-scale exponential.
    """
    data = np.asarray(samples, dtype=float)
    if data.ndim != 1 or data.size < 20:
        raise ValueError("need at least 20 one-dimensional samples")
    if not 0.0 < tail_fraction < 1.0:
        raise ValueError("tail_fraction must be in (0, 1)")
    threshold = float(np.quantile(data, 1.0 - tail_fraction))
    excesses = np.sort(data[data > threshold] - threshold)
    n = excesses.size
    if n < 5 or float(excesses.max()) == 0.0:
        fit = ExponentialTailFit(threshold, 0.0, tail_fraction, int(n))
        return PWCETCurve(fit=fit, sample_max=float(data.max()))
    mean = float(excesses.mean())
    # Probability-weighted moment t = E[X * (1 - F(X))] (Hosking &
    # Wallis 1987): for the GPD, k = b0/(b0 - 2t) - 2 with k = -shape,
    # and sigma = 2*b0*t/(b0 - 2t).
    ranks = (np.arange(1, n + 1) - 0.35) / n
    t = float(np.mean(excesses * (1.0 - ranks)))
    denominator = mean - 2.0 * t
    if abs(denominator) < 1e-12:
        shape = 0.0
        scale = mean
    else:
        hosking_k = mean / denominator - 2.0
        shape = -hosking_k
        scale = 2.0 * mean * t / denominator
        # PWM can go astray on tiny samples; clamp to a sane range.
        shape = float(np.clip(shape, -1.5, 0.9))
        if scale <= 0:
            shape = 0.0
            scale = mean
    fit = GPDTailFit(
        threshold=threshold,
        scale=float(scale),
        shape=float(shape),
        tail_fraction=float(n / data.size),
    )
    return PWCETCurve(fit=fit, sample_max=float(data.max()))


def exponentiality_coefficient(samples: Sequence[float],
                               tail_fraction: float = 0.1) -> float:
    """Coefficient of variation of the threshold excesses.

    1.0 for an exponential tail; < 1 indicates a lighter/bounded tail
    (safe for the exponential model), > 1 a heavier one (the
    exponential pWCET would be optimistic — use the GPD fit).
    """
    data = np.asarray(samples, dtype=float)
    threshold = float(np.quantile(data, 1.0 - tail_fraction))
    excesses = data[data > threshold] - threshold
    if excesses.size < 2 or float(excesses.mean()) == 0.0:
        return 0.0
    return float(excesses.std(ddof=1) / excesses.mean())


def fit_gumbel_block_maxima(
    samples: Sequence[float], block_size: int = 50
) -> PWCETCurve:
    """Block-maxima Gumbel fit via the method of moments.

    Splits the sample into blocks of ``block_size`` runs, takes each
    block's maximum, and matches the Gumbel mean/variance:
    scale = std * sqrt(6)/pi, location = mean - gamma * scale.
    """
    data = np.asarray(samples, dtype=float)
    if data.ndim != 1:
        raise ValueError("samples must be one-dimensional")
    if block_size < 2:
        raise ValueError("block_size must be at least 2")
    num_blocks = data.size // block_size
    if num_blocks < 10:
        raise ValueError(
            f"need at least 10 blocks; got {num_blocks} "
            f"({data.size} samples / block_size {block_size})"
        )
    maxima = data[: num_blocks * block_size].reshape(num_blocks, block_size)
    maxima = maxima.max(axis=1)
    std = float(maxima.std(ddof=1))
    euler_gamma = 0.5772156649015329
    scale = std * math.sqrt(6.0) / math.pi
    if scale == 0.0:
        scale = 1e-12  # degenerate maxima; keep the quantile defined
    location = float(maxima.mean()) - euler_gamma * scale
    fit = GumbelFit(location=location, scale=scale, block_size=block_size)
    return PWCETCurve(fit=fit, sample_max=float(data.max()))
