"""Measurement-Based Probabilistic Timing Analysis (MBPTA).

Implements the statistical machinery of paper §2.1 and §6.2.2: EVT
tail fitting for pWCET curves, the Ljung-Box and Kolmogorov-Smirnov
i.i.d. admission tests, the end-to-end analysis pipeline, and the
empirical checkers for the mbpta-p1/p2/p3 placement properties."""

from repro.mbpta.analysis import MBPTAAnalysis, MBPTAReport
from repro.mbpta.evt import (
    ExponentialTailFit,
    GPDTailFit,
    GumbelFit,
    PWCETCurve,
    exponentiality_coefficient,
    fit_exponential_tail,
    fit_gpd_tail,
    fit_gumbel_block_maxima,
)
from repro.mbpta.properties import (
    PlacementPropertyReport,
    check_apop_fixed_randomness,
    check_full_randomness,
    check_placement_properties,
)
from repro.mbpta.stats_tests import (
    TestResult,
    ks_two_sample,
    ljung_box,
    runs_test,
)

__all__ = [
    "MBPTAAnalysis",
    "MBPTAReport",
    "ExponentialTailFit",
    "GPDTailFit",
    "GumbelFit",
    "PWCETCurve",
    "exponentiality_coefficient",
    "fit_exponential_tail",
    "fit_gpd_tail",
    "fit_gumbel_block_maxima",
    "TestResult",
    "ljung_box",
    "ks_two_sample",
    "runs_test",
    "PlacementPropertyReport",
    "check_full_randomness",
    "check_apop_fixed_randomness",
    "check_placement_properties",
]
