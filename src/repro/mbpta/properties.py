"""Empirical checkers for the MBPTA placement properties (paper §2.1).

The paper defines what a random-placement function must satisfy:

* **mbpta-p2, Full Randomness** — for two addresses A != B:
  (1) A maps to different sets under different seeds,
  (2) conflicts between A and B are not systematic: some seeds map
      them together, others apart — including same-page pairs.
* **mbpta-p3, Partial APOP-fixed Randomness** — like p2 across page
  boundaries, but two addresses *within the same page* must never
  conflict, for any seed.

These checkers probe a :class:`PlacementPolicy` over many seeds and
address pairs, returning a verdict per property.  They turn the
paper's §3/§4 analysis into executable checks: modulo and Aciicmez
XOR-index fail both properties, hashRP achieves p2, RM achieves p3,
and RPCache's permutation tables fail both (conflicts are invariant
across tables).

The probes are randomized; verdicts are sound up to sampling (a
"conflicts possible" observation is definitive, its absence is
statistical).  Use geometries with few sets and generous seed counts
when certifying a new policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.common.prng import XorShift128
from repro.cache.placement import PlacementPolicy


@dataclass
class PlacementPropertyReport:
    """Verdicts of the property probes for one placement policy."""

    policy: str
    #: Placements of single addresses vary with the seed (p2/p3 req. 1).
    seed_sensitive: bool
    #: Cross-page conflicts occur for some seeds and not others (req. 2).
    cross_page_non_systematic: bool
    #: Same-page pairs conflict under at least one probed seed.
    same_page_conflicts_possible: bool
    #: Same-page pairs never conflicted under any probed seed.
    intra_page_conflict_free: bool
    details: List[str] = field(default_factory=list)

    @property
    def full_randomness(self) -> bool:
        """mbpta-p2 verdict: all pairs, even same-page, mix randomly."""
        return (
            self.seed_sensitive
            and self.cross_page_non_systematic
            and self.same_page_conflicts_possible
        )

    @property
    def apop_fixed_randomness(self) -> bool:
        """mbpta-p3 verdict: random across pages, bijective within."""
        return (
            self.seed_sensitive
            and self.cross_page_non_systematic
            and self.intra_page_conflict_free
        )

    @property
    def mbpta_compliant(self) -> bool:
        """Either property enables MBPTA (paper §2.1)."""
        return self.full_randomness or self.apop_fixed_randomness


def _sample_seeds(num_seeds: int, prng_seed: int) -> List[int]:
    prng = XorShift128(prng_seed)
    return [prng.next_bits(32) for _ in range(num_seeds)]


def check_seed_sensitivity(
    policy: PlacementPolicy,
    seeds: Sequence[int],
    addresses: Sequence[int],
) -> Tuple[bool, str]:
    """Requirement (1): placements vary with the seed."""
    for address in addresses:
        sets = {policy.map_address(address, seed) for seed in seeds}
        if len(sets) > 1:
            return True, "placements differ across seeds"
    return False, "every probed address kept its set across all seeds"


def check_cross_page(
    policy: PlacementPolicy,
    seeds: Sequence[int],
    prng_seed: int,
    page_size: int = 4096,
    num_pairs: int = 64,
) -> Tuple[bool, str]:
    """Requirement (2) across pages: conflict outcomes depend on the seed."""
    layout = policy.layout
    prng = XorShift128(prng_seed)
    page_bits = layout.address_bits - (page_size - 1).bit_length()
    lines_per_page = max(1, page_size // layout.line_size)
    saw_both = False
    for _ in range(num_pairs):
        page_a = prng.next_bits(page_bits) * page_size
        page_b = prng.next_bits(page_bits) * page_size
        if page_a == page_b:
            continue
        offset = prng.next_below(lines_per_page)
        a = page_a + offset * layout.line_size
        b = page_b + offset * layout.line_size
        outcomes = {
            policy.map_address(a, seed) == policy.map_address(b, seed)
            for seed in seeds
        }
        if outcomes == {True}:
            return False, (
                f"pair {a:#x}/{b:#x} conflicts systematically for all seeds"
            )
        if outcomes == {True, False}:
            saw_both = True
    if saw_both:
        return True, "cross-page conflicts vary with the seed"
    return False, "no cross-page pair ever conflicted (probe too small?)"


def check_same_page(
    policy: PlacementPolicy,
    seeds: Sequence[int],
    prng_seed: int,
    page_size: int = 4096,
    pages_to_probe: int = 4,
) -> Tuple[bool, bool, str]:
    """Same-page behaviour: (conflicts_possible, conflict_free, note).

    Enumerates every line of several random pages under every seed —
    exhaustive within the probed pages, so ``conflict_free`` is a
    strong statement for bijective designs like RM.
    """
    layout = policy.layout
    lines_per_page = max(2, page_size // layout.line_size)
    prng = XorShift128(prng_seed)
    page_bits = layout.address_bits - (page_size - 1).bit_length()
    conflicts_seen = False
    for _ in range(pages_to_probe):
        page_base = prng.next_bits(page_bits) * page_size
        line_addresses = [
            page_base + i * layout.line_size for i in range(lines_per_page)
        ]
        for seed in seeds:
            mapped = [policy.map_address(a, seed) for a in line_addresses]
            if len(set(mapped)) != len(mapped):
                conflicts_seen = True
    if conflicts_seen:
        return True, False, "same-page conflicts occur under some seeds"
    return False, True, "no intra-page conflicts for any probed seed"


def check_placement_properties(
    policy: PlacementPolicy,
    num_seeds: int = 64,
    prng_seed: int = 0xBEEF,
    page_size: int = 4096,
) -> PlacementPropertyReport:
    """Probe all properties and assemble the report."""
    seeds = _sample_seeds(num_seeds, prng_seed)
    prng = XorShift128(prng_seed ^ 0x5A5A)
    layout = policy.layout
    addresses = [
        prng.next_bits(layout.tag_bits + layout.index_bits)
        << layout.offset_bits
        for _ in range(16)
    ]
    sensitive, note_s = check_seed_sensitivity(policy, seeds, addresses)
    cross_ok, note_c = check_cross_page(
        policy, seeds, prng_seed ^ 1, page_size=page_size
    )
    same_possible, same_free, note_p = check_same_page(
        policy, seeds, prng_seed ^ 2, page_size=page_size
    )
    return PlacementPropertyReport(
        policy=policy.name,
        seed_sensitive=sensitive,
        cross_page_non_systematic=cross_ok,
        same_page_conflicts_possible=same_possible,
        intra_page_conflict_free=same_free,
        details=[note_s, note_c, note_p],
    )


def check_full_randomness(
    policy: PlacementPolicy,
    num_seeds: int = 64,
    prng_seed: int = 0xFEED,
    page_size: int = 4096,
) -> PlacementPropertyReport:
    """mbpta-p2 probe (same report; read ``full_randomness``)."""
    return check_placement_properties(
        policy, num_seeds=num_seeds, prng_seed=prng_seed, page_size=page_size
    )


def check_apop_fixed_randomness(
    policy: PlacementPolicy,
    num_seeds: int = 64,
    prng_seed: int = 0xFACE,
    page_size: int = 4096,
) -> PlacementPropertyReport:
    """mbpta-p3 probe (same report; read ``apop_fixed_randomness``)."""
    return check_placement_properties(
        policy, num_seeds=num_seeds, prng_seed=prng_seed, page_size=page_size
    )
