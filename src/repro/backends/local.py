"""Single-host backends: in-process serial and process-pool execution.

These are the two execution modes :class:`CampaignRunner` grew up
with, refactored behind the :class:`ExecutionBackend` protocol so the
runner no longer knows *how* units run — only that results stream
back in some order.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor, as_completed
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Set

from repro.backends.base import (
    ExecutionBackend,
    WorkResult,
    WorkUnit,
    execute_unit,
    resolve_unit_kind,
    stamp_timings,
)
from repro.campaigns.spec import ExperimentSpec
from repro.core.batch import Shard


class SerialBackend(ExecutionBackend):
    """Executes units in this process, in submission order.

    The reference semantics: every other backend must produce
    bit-identical payloads to this one.
    """

    def __init__(self) -> None:
        self._queue: Deque[WorkUnit] = deque()

    def submit(self, unit: WorkUnit) -> None:
        self._queue.append(unit)

    def completions(self) -> Iterator[WorkResult]:
        while self._queue:
            unit = self._queue.popleft()
            started, cpu0 = time.time(), time.process_time()
            payload, elapsed = execute_unit(unit)
            yield WorkResult(
                unit=unit, payload=payload, elapsed=elapsed,
                timings=stamp_timings(started, cpu0),
            )

    def cancel(self) -> None:
        self._queue.clear()

    def cancel_units(self, unit_ids: Iterable[str]) -> None:
        """Drop the named units from the queue.  Serial execution means
        a cancelled unit either has not started — removed here, never
        executed — or already finished and was yielded."""
        ids = set(unit_ids)
        self._queue = deque(
            unit for unit in self._queue if unit.unit_id not in ids
        )


def _pool_execute(run_fn, spec: ExperimentSpec, shard: Optional[Shard]):
    """(payload, compute seconds, timings doc) on a pool worker.

    Receives the kind's run function directly rather than re-resolving
    ``spec.kind``: under the ``spawn`` start method a worker process
    has an empty registry apart from the built-ins, but unpickling the
    function reference imports its defining module — which re-runs any
    ``register_experiment`` side effects.  Timing happens here, on the
    worker, so parallel units report their own compute time rather
    than time-since-pool-start.
    """
    started, cpu0 = time.time(), time.process_time()
    start = time.perf_counter()
    payload = run_fn(spec) if shard is None else run_fn(spec, shard)
    elapsed = time.perf_counter() - start
    return payload, elapsed, stamp_timings(started, cpu0)


class ProcessPoolBackend(ExecutionBackend):
    """Fans units out across a ``ProcessPoolExecutor`` on this host.

    The pool is created lazily at the first drain, sized
    ``min(workers, submitted units)`` so a one-unit round never pays
    for idle processes, and reused by later submit/drain rounds.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._pending: List[WorkUnit] = []
        self._pool: Optional[ProcessPoolExecutor] = None
        #: In-flight futures of the current drain (cancellation handle).
        self._futures: Dict[Future, WorkUnit] = {}
        #: Units cancelled too late for ``Future.cancel`` — already
        #: running; their results are suppressed on arrival.
        self._cancelled: Set[str] = set()

    def submit(self, unit: WorkUnit) -> None:
        self._pending.append(unit)

    def completions(self) -> Iterator[WorkResult]:
        if not self._pending:
            return
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=min(self.workers, len(self._pending))
            )
        for unit in self._pending:
            kind = resolve_unit_kind(unit)
            run_fn = kind.run if unit.shard is None else kind.run_shard
            self._futures[
                self._pool.submit(_pool_execute, run_fn, unit.spec, unit.shard)
            ] = unit
        self._pending = []
        try:
            for future in as_completed(list(self._futures)):
                unit = self._futures.pop(future)
                if future.cancelled() or unit.unit_id in self._cancelled:
                    self._cancelled.discard(unit.unit_id)
                    continue
                payload, elapsed, timings = future.result()
                yield WorkResult(
                    unit=unit, payload=payload, elapsed=elapsed,
                    timings=timings,
                )
        finally:
            # A drain abandoned mid-way (a worker error raised out of
            # result(), or the consumer closed the generator) must not
            # leak its remaining futures into the backend's next
            # round — they belong to this round's units only.
            for future in self._futures:
                future.cancel()
            self._futures = {}
            self._cancelled = set()

    def cancel(self) -> None:
        self._pending = []

    def cancel_units(self, unit_ids: Iterable[str]) -> None:
        """Cancel the named units: not-yet-drained submissions are
        dropped, queued futures cancelled, and units the pool already
        started keep running but their results are discarded."""
        ids = set(unit_ids)
        self._pending = [
            unit for unit in self._pending if unit.unit_id not in ids
        ]
        for future, unit in list(self._futures.items()):
            if unit.unit_id in ids:
                self._cancelled.add(unit.unit_id)
                future.cancel()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
