"""HTTP coordinator: the filesystem work queue served over a network.

The filesystem queue (:mod:`repro.backends.workqueue`) already has the
right crash semantics — atomic document writes, rename-based claims,
lease heartbeats, bounded re-enqueue — but it requires every worker to
*mount the directory*.  This module lifts exactly those wire documents
onto HTTP so a fleet of hosts can drain one campaign with no shared
filesystem:

* :class:`CoordinatorServer` — a stdlib ``ThreadingHTTPServer`` that
  owns the queue directory and speaks the task/lease/result docs over
  a small JSON API (``POST /claim``, ``PUT /heartbeat/<unit>``,
  ``POST /result/<unit>``, ``GET /stats``, plus the dispatcher-side
  endpoints below).  All state lives on disk in the same atomic queue
  layout, so a coordinator that is SIGKILLed and restarted on the
  same directory resumes the campaign mid-flight: leases keep aging,
  results stay collectable, nothing is re-run that already finished.
* :func:`worker_loop_http` — the ``repro worker --coordinator URL``
  main loop: claim, execute, heartbeat, publish, entirely over HTTP.
* :class:`HttpQueueBackend` — the dispatcher side: an
  :class:`~repro.backends.base.ExecutionBackend` whose submit/poll/
  collect/requeue/cancel primitives are HTTP calls against the
  coordinator, mirroring :class:`WorkQueueBackend`'s recovery logic
  (lease expiry re-enqueue bounded by ``max_attempts``,
  collect-before-requeue, straggler sweeps).

Failure semantics
-----------------

* **Connection errors** (coordinator restarting, network blip): every
  client call retries with capped exponential backoff + jitter for up
  to ``retry_timeout`` seconds, so a coordinator bounce is invisible
  as long as it comes back within the budget.
* **Worker death mid-upload**: a result ``POST`` is accepted only
  when the request body arrives complete (exact ``Content-Length``
  bytes); a short read writes nothing, the lease goes stale, and the
  unit is re-enqueued like any other dead-worker case.
* **Duplicate result posts**: a unit re-enqueued while its worker was
  merely slow (not dead) can produce two posts.  Each post carries
  the attempt id it executed; the coordinator accepts a result only
  while the unit's current attempt matches, so the stale
  predecessor's duplicate is detected and dropped.  Payloads are pure
  functions of the wire doc, so whichever attempt lands is
  bit-identical anyway — the guard exists so the predecessor cannot
  release (or clobber) the *successor's* live lease.

Everything here is standard library only.
"""

from __future__ import annotations

import http.client
import json
import os
import pickle
import random
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.backends.base import (
    ExecutionBackend,
    WorkResult,
    WorkUnit,
)
from repro.backends.workqueue import (
    LEASES_DIR,
    RESULTS_DIR,
    TASKS_DIR,
    WORKERS_DIR,
    WorkerLauncher,
    _claim_next,
    _host_label,
    _lease_path,
    _log_tails,
    _result_path,
    _stop_path,
    _stop_proc,
    _task_path,
    _worker_info_path,
    _worker_stop_path,
    ensure_queue_dirs,
    quarantine_file,
    run_unit_doc,
)
from repro.common.fsio import atomic_write_bytes
from repro.telemetry.events import make_event

DEFAULT_PORT = 8642


# -- coordinator (server) ----------------------------------------------------


class CoordinatorState:
    """The handler-shared view of one queue directory.

    One global lock serializes every mutating operation.  The queue's
    file operations are individually atomic already; the lock buys the
    *compound* guarantees the HTTP surface promises — e.g. the
    result-post attempt check and the lease release happen as one
    step, and a ``/requeue`` cannot interleave with the result landing
    it is checking for.
    """

    def __init__(self, queue_dir: str, *, worker_fresh: float = 5.0) -> None:
        self.queue_dir = queue_dir
        #: Seconds within which a ``workers/<id>.json`` mtime counts
        #: as a live idle worker for ``/stats`` (busy workers
        #: advertise through their stamped lease instead).
        self.worker_fresh = worker_fresh
        self.lock = threading.Lock()
        #: Process-lifetime throughput counters behind ``GET
        #: /metrics``.  Deliberately *not* persisted: a restarted
        #: coordinator reports its own uptime and post count, so the
        #: throughput line always describes the serving process.
        self.started = time.time()
        self.results_posted = 0
        #: Optional :class:`~repro.service.scheduler.CampaignScheduler`
        #: behind the ``/campaigns`` routes (attached by ``repro
        #: serve``).  The scheduler has its own lock — campaign routes
        #: never take ``self.lock``, so a submission can never block a
        #: worker's claim/result round-trip.
        self.scheduler = None
        ensure_queue_dirs(queue_dir)

    # Each helper below runs under ``self.lock`` (the handler takes
    # it) and works purely against the on-disk queue, which is the
    # whole crash-restart story: a restarted coordinator rebuilds its
    # entire world from the directory.

    def claim(self, worker_id: str, host: str) -> Dict[str, Any]:
        info_path = _worker_info_path(self.queue_dir, worker_id)
        if os.path.exists(_stop_path(self.queue_dir)):
            self._forget_worker(worker_id)
            return {"unit": None, "stop": True, "retire": False}
        if os.path.exists(_worker_stop_path(self.queue_dir, worker_id)):
            self._forget_worker(worker_id)
            return {"unit": None, "stop": False, "retire": True}
        # The claim poll doubles as the worker's idle liveness beat.
        try:
            os.utime(info_path)
        except OSError:
            atomic_write_bytes(
                info_path,
                json.dumps({
                    "worker_id": worker_id,
                    "host": host,
                    "via": "coordinator",
                    "started": time.time(),
                }).encode(),
            )
        unit_id = _claim_next(self.queue_dir)
        if unit_id is None:
            return {"unit": None, "stop": False, "retire": False}
        lease_path = _lease_path(self.queue_dir, unit_id)
        try:
            with open(lease_path) as handle:
                doc = json.load(handle)
        except (OSError, ValueError):
            # Claim raced a cancel (or the doc is torn): nothing to
            # hand out this round.
            return {"unit": None, "stop": False, "retire": False}
        # Stamp ownership before the doc ever leaves the coordinator —
        # HTTP claims have no unstamped window at all.
        doc["worker"] = worker_id
        doc["host"] = host
        atomic_write_bytes(lease_path, json.dumps(doc).encode())
        return {"unit": doc, "stop": False, "retire": False}

    def _forget_worker(self, worker_id: str) -> None:
        for path in (
            _worker_stop_path(self.queue_dir, worker_id),
            _worker_info_path(self.queue_dir, worker_id),
        ):
            try:
                os.unlink(path)
            except OSError:
                pass

    def heartbeat(self, unit_id: str, worker_id: str) -> bool:
        """Refresh the lease if ``worker_id`` still owns it."""
        lease_path = _lease_path(self.queue_dir, unit_id)
        try:
            with open(lease_path) as handle:
                owner = json.load(handle).get("worker")
        except (OSError, ValueError):
            return False
        if owner != worker_id:
            return False
        try:
            os.utime(lease_path)
        except OSError:
            return False
        return True

    def post_result(
        self, unit_id: str, worker_id: str, attempt: int, body: bytes
    ) -> bool:
        """Publish a result; False when the post is stale/duplicate.

        Accepted only while (a) no result is already on disk and (b)
        the unit's current doc — its lease, or its task file if it was
        re-enqueued but not yet re-claimed — still carries the posting
        attempt.  A re-enqueue increments the attempt, so a slow
        predecessor's late post fails the check and is dropped without
        touching the successor's lease.  A unit with no doc at all was
        cancelled (or already finished and was collected): dropped
        too.
        """
        result_path = _result_path(self.queue_dir, unit_id)
        if os.path.exists(result_path):
            return False
        lease_path = _lease_path(self.queue_dir, unit_id)
        doc = self._read_json(lease_path)
        release_lease = False
        if doc is not None:
            if int(doc.get("attempt", 1)) != attempt:
                return False
            release_lease = doc.get("worker") == worker_id
        else:
            doc = self._read_json(_task_path(self.queue_dir, unit_id))
            if doc is None or int(doc.get("attempt", 1)) != attempt:
                return False
        atomic_write_bytes(result_path, body)
        self.results_posted += 1
        if release_lease:
            try:
                os.unlink(lease_path)
            except OSError:
                pass
        return True

    @staticmethod
    def _read_json(path: str) -> Optional[Dict[str, Any]]:
        try:
            with open(path) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def submit(self, doc: Dict[str, Any]) -> None:
        unit_id = str(doc["unit_id"])
        # Same submit-time sweep as WorkQueueBackend: deterministic
        # unit ids mean a reused queue directory may hold this id's
        # leftovers from an earlier campaign.
        for stale in (
            _result_path(self.queue_dir, unit_id),
            _lease_path(self.queue_dir, unit_id),
            _task_path(self.queue_dir, unit_id),
        ):
            try:
                os.unlink(stale)
            except FileNotFoundError:
                pass
        atomic_write_bytes(
            _task_path(self.queue_dir, unit_id),
            json.dumps(doc).encode(),
        )

    def poll(
        self, unit_ids: List[str], cancelled: List[str]
    ) -> Dict[str, Any]:
        """One dispatcher round trip: readiness + lease ages + sweep."""
        ready: List[str] = []
        lease_ages: Dict[str, Optional[float]] = {}
        now = time.time()
        for unit_id in unit_ids:
            if os.path.exists(_result_path(self.queue_dir, unit_id)):
                ready.append(unit_id)
            try:
                mtime = os.stat(
                    _lease_path(self.queue_dir, unit_id)
                ).st_mtime
                lease_ages[unit_id] = now - mtime
            except OSError:
                lease_ages[unit_id] = None
        swept: List[str] = []
        for unit_id in cancelled:
            try:
                os.unlink(_result_path(self.queue_dir, unit_id))
                swept.append(unit_id)
            except FileNotFoundError:
                pass
        return {"ready": ready, "lease_ages": lease_ages, "swept": swept}

    def read_result(self, unit_id: str) -> Optional[bytes]:
        try:
            with open(_result_path(self.queue_dir, unit_id), "rb") as f:
                return f.read()
        except OSError:
            return None

    def delete_result(self, unit_id: str) -> bool:
        """Consume a result (plus any task/lease litter for the id)."""
        removed = False
        try:
            os.unlink(_result_path(self.queue_dir, unit_id))
            removed = True
        except FileNotFoundError:
            pass
        for path in (
            _lease_path(self.queue_dir, unit_id),
            _task_path(self.queue_dir, unit_id),
        ):
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
        return removed

    def requeue(
        self, unit_id: str, doc: Dict[str, Any], quarantine: bool
    ) -> Dict[str, Any]:
        """Re-enqueue an expired/corrupt unit with a fresh attempt doc.

        Collect-before-requeue, decided atomically on the coordinator:
        if a result landed for the unit (the worker was slow, not
        dead), the requeue is refused and the dispatcher collects
        instead — unless ``quarantine`` is set, which means the
        dispatcher already read that result and found it corrupt; then
        the evidence moves to ``corrupt/`` first and the retry
        proceeds.
        """
        result_path = _result_path(self.queue_dir, unit_id)
        quarantined = None
        if os.path.exists(result_path):
            if not quarantine:
                return {"requeued": False, "has_result": True}
            quarantined = quarantine_file(self.queue_dir, result_path)
        try:
            os.unlink(_lease_path(self.queue_dir, unit_id))
        except FileNotFoundError:
            pass
        atomic_write_bytes(
            _task_path(self.queue_dir, unit_id),
            json.dumps(doc).encode(),
        )
        return {
            "requeued": True, "has_result": False,
            "quarantined": quarantined,
        }

    def cancel(self, unit_ids: List[str]) -> Dict[str, Dict[str, bool]]:
        removed: Dict[str, Dict[str, bool]] = {}
        for unit_id in unit_ids:
            stages = {}
            for stage, path in (
                ("task", _task_path(self.queue_dir, unit_id)),
                ("lease", _lease_path(self.queue_dir, unit_id)),
                ("result", _result_path(self.queue_dir, unit_id)),
            ):
                try:
                    os.unlink(path)
                    stages[stage] = True
                except FileNotFoundError:
                    stages[stage] = False
            removed[unit_id] = stages
        return removed

    def set_stop(self, stopped: bool) -> None:
        if stopped:
            atomic_write_bytes(_stop_path(self.queue_dir), b"")
        else:
            try:
                os.unlink(_stop_path(self.queue_dir))
            except FileNotFoundError:
                pass

    def stats(self) -> Dict[str, Any]:
        counts = {}
        for name in (TASKS_DIR, LEASES_DIR, RESULTS_DIR):
            try:
                counts[name] = len(os.listdir(
                    os.path.join(self.queue_dir, name)
                ))
            except FileNotFoundError:
                counts[name] = 0
        # Unique live workers per host: fresh idle heartbeats from
        # workers/, plus the owner stamped into every lease (a busy
        # worker's info file may be stale — its liveness is the lease).
        worker_hosts: Dict[str, str] = {}
        workers_dir = os.path.join(self.queue_dir, WORKERS_DIR)
        now = time.time()
        try:
            names = os.listdir(workers_dir)
        except FileNotFoundError:
            names = []
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(workers_dir, name)
            try:
                if now - os.stat(path).st_mtime > self.worker_fresh:
                    continue
            except OSError:
                continue
            info = self._read_json(path) or {}
            worker_hosts[name[: -len(".json")]] = (
                info.get("host") or "external"
            )
        leases_dir = os.path.join(self.queue_dir, LEASES_DIR)
        try:
            names = os.listdir(leases_dir)
        except FileNotFoundError:
            names = []
        for name in names:
            if not name.endswith(".json"):
                continue
            doc = self._read_json(os.path.join(leases_dir, name)) or {}
            worker = doc.get("worker")
            if worker:
                worker_hosts[worker] = doc.get("host") or "external"
        by_host: Dict[str, int] = {}
        for host in worker_hosts.values():
            by_host[host] = by_host.get(host, 0) + 1
        return {
            "queue_dir": self.queue_dir,
            "tasks": counts[TASKS_DIR],
            "leases": counts[LEASES_DIR],
            "results": counts[RESULTS_DIR],
            "stopped": os.path.exists(_stop_path(self.queue_dir)),
            "workers_by_host": by_host,
        }

    def metrics(self) -> Dict[str, Any]:
        """The ``GET /metrics`` fleet snapshot.

        The :func:`~repro.telemetry.status.queue_dir_status` document
        (per-lease ages, per-worker states, host counts) computed
        coordinator-side, plus the serving process's uptime and
        result-post counter so ``repro status --coordinator`` can
        print a throughput line without any filesystem access.
        """
        from repro.telemetry.status import queue_dir_status

        doc = queue_dir_status(
            self.queue_dir, heartbeat_fresh=self.worker_fresh
        )
        doc["uptime"] = round(time.time() - self.started, 3)
        doc["results_posted"] = self.results_posted
        if self.scheduler is not None:
            # Per-tenant queue depth / in-flight / dedup hits — the
            # scheduler takes its own lock, never ``self.lock``.
            doc["service"] = self.scheduler.stats()
        return doc


class _CoordinatorHandler(BaseHTTPRequestHandler):
    """Routes the wire API onto :class:`CoordinatorState`."""

    # Keep-alive lets a worker reuse one connection across its whole
    # claim/heartbeat/post lifecycle.
    protocol_version = "HTTP/1.1"

    @property
    def state(self) -> CoordinatorState:
        return self.server.state  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        pass  # the queue directory is the audit trail, not stderr

    # -- plumbing ------------------------------------------------------------

    def _send_json(self, code: int, obj: Any) -> None:
        self._send(code, "application/json", json.dumps(obj).encode())

    def _send_bytes(self, code: int, body: bytes) -> None:
        self._send(code, "application/octet-stream", body)

    def _send(self, code: int, ctype: str, body: bytes) -> None:
        try:
            self.send_response(code)
            self.send_header("Content-Type", ctype)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except OSError:
            # The client died mid-response (worker crash, truncated
            # upload's broken socket): its retry will re-ask.
            self.close_connection = True

    def _read_body(self) -> Optional[bytes]:
        """The request body, or None on a short read (client died
        mid-upload) or a missing Content-Length."""
        length = self.headers.get("Content-Length")
        if length is None:
            return None
        try:
            expected = int(length)
        except ValueError:
            return None
        body = b""
        try:
            while len(body) < expected:
                chunk = self.rfile.read(expected - len(body))
                if not chunk:
                    return None  # connection died before the end
                body += chunk
        except OSError:
            return None
        return body

    def _read_json_body(self) -> Optional[Dict[str, Any]]:
        body = self._read_body()
        if body is None:
            return None
        try:
            doc = json.loads(body)
        except ValueError:
            return None
        return doc if isinstance(doc, dict) else None

    def _route(self) -> Tuple[str, List[str]]:
        path = urllib.parse.urlsplit(self.path).path
        parts = [p for p in path.split("/") if p]
        return (parts[0] if parts else "", parts[1:])

    def _query(self) -> Dict[str, str]:
        raw = urllib.parse.urlsplit(self.path).query
        return {k: v[-1] for k, v in
                urllib.parse.parse_qs(raw).items()}

    # -- verbs ---------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        head, rest = self._route()
        state = self.state
        if head == "claim":
            doc = self._read_json_body()
            if doc is None or not doc.get("worker"):
                return self._send_json(400, {"error": "bad claim body"})
            with state.lock:
                out = state.claim(
                    str(doc["worker"]),
                    str(doc.get("host") or "external"),
                )
            return self._send_json(200, out)
        if head == "result" and rest:
            worker = self.headers.get("X-Repro-Worker", "")
            body = self._read_body()
            try:
                attempt = int(self.headers.get("X-Repro-Attempt", ""))
            except ValueError:
                return self._send_json(
                    400, {"error": "missing/bad X-Repro-Attempt"}
                )
            if body is None:
                # Truncated upload: write nothing — the lease will go
                # stale and the unit re-enqueues.
                return self._send_json(400, {"error": "short body"})
            with state.lock:
                accepted = state.post_result(
                    rest[0], worker, attempt, body
                )
            return self._send_json(200, {"accepted": accepted})
        if head == "submit":
            doc = self._read_json_body()
            if doc is None or "unit_id" not in doc:
                return self._send_json(400, {"error": "bad task doc"})
            with state.lock:
                state.submit(doc)
            return self._send_json(200, {"ok": True})
        if head == "poll":
            doc = self._read_json_body()
            if doc is None:
                return self._send_json(400, {"error": "bad poll body"})
            with state.lock:
                out = state.poll(
                    [str(u) for u in doc.get("unit_ids", [])],
                    [str(u) for u in doc.get("cancelled", [])],
                )
            return self._send_json(200, out)
        if head == "requeue" and rest:
            doc = self._read_json_body()
            if doc is None or "unit_id" not in doc:
                return self._send_json(400, {"error": "bad task doc"})
            quarantine = self._query().get("quarantine") == "1"
            with state.lock:
                out = state.requeue(rest[0], doc, quarantine)
            return self._send_json(200, out)
        if head == "cancel":
            doc = self._read_json_body()
            if doc is None:
                return self._send_json(400, {"error": "bad cancel body"})
            with state.lock:
                removed = state.cancel(
                    [str(u) for u in doc.get("unit_ids", [])]
                )
            return self._send_json(200, {"removed": removed})
        if head == "stop":
            with state.lock:
                state.set_stop(True)
            return self._send_json(200, {"ok": True})
        if head == "campaigns" and not rest:
            scheduler = state.scheduler
            if scheduler is None:
                return self._send_json(404, {
                    "error": "campaign scheduling is not enabled "
                             "(start the daemon with `repro serve`)"
                })
            doc = self._read_json_body()
            if doc is None:
                return self._send_json(400, {"error": "bad body"})
            try:
                campaign_id = scheduler.submit_doc(doc)
            except ValueError as exc:
                return self._send_json(400, {"error": str(exc)})
            except RuntimeError as exc:  # scheduler closed
                return self._send_json(503, {"error": str(exc)})
            return self._send_json(200, {"id": campaign_id})
        return self._send_json(404, {"error": f"no route {self.path}"})

    def do_PUT(self) -> None:  # noqa: N802
        head, rest = self._route()
        if head == "heartbeat" and rest:
            doc = self._read_json_body()
            if doc is None or not doc.get("worker"):
                return self._send_json(400, {"error": "bad body"})
            with self.state.lock:
                alive = self.state.heartbeat(
                    rest[0], str(doc["worker"])
                )
            if alive:
                return self._send_json(200, {"ok": True})
            # 410 Gone: the lease was re-enqueued/cancelled or belongs
            # to a successor — the worker must abort its publish.
            return self._send_json(410, {"ok": False})
        return self._send_json(404, {"error": f"no route {self.path}"})

    def do_GET(self) -> None:  # noqa: N802
        head, rest = self._route()
        if head == "result" and rest:
            with self.state.lock:
                body = self.state.read_result(rest[0])
            if body is None:
                return self._send_json(404, {"error": "no result"})
            return self._send_bytes(200, body)
        if head == "stats":
            with self.state.lock:
                return self._send_json(200, self.state.stats())
        if head == "metrics":
            with self.state.lock:
                return self._send_json(200, self.state.metrics())
        if head == "campaigns":
            scheduler = self.state.scheduler
            if scheduler is None:
                return self._send_json(
                    404, {"error": "campaign scheduling is not enabled"}
                )
            if not rest:
                return self._send_json(
                    200, {"campaigns": scheduler.list_campaigns()}
                )
            if len(rest) == 1:
                try:
                    after = int(self._query().get("after", "0"))
                except ValueError:
                    after = 0
                doc = scheduler.status_doc(rest[0], after=after)
                if doc is None:
                    return self._send_json(
                        404, {"error": f"no campaign {rest[0]!r}"}
                    )
                return self._send_json(200, doc)
            if len(rest) == 2 and rest[1] == "result":
                state_name, record = scheduler.result_record(rest[0])
                if state_name is None:
                    return self._send_json(
                        404, {"error": f"no campaign {rest[0]!r}"}
                    )
                if record is None:
                    # 409: the id exists but there is nothing to fetch
                    # (yet) — running, failed or cancelled.
                    return self._send_json(
                        409, {"error": f"campaign is {state_name}",
                              "state": state_name}
                    )
                return self._send_bytes(
                    200,
                    pickle.dumps(
                        record, protocol=pickle.HIGHEST_PROTOCOL
                    ),
                )
        return self._send_json(404, {"error": f"no route {self.path}"})

    def do_DELETE(self) -> None:  # noqa: N802
        head, rest = self._route()
        if head == "result" and rest:
            with self.state.lock:
                removed = self.state.delete_result(rest[0])
            return self._send_json(200, {"removed": removed})
        if head == "stop":
            with self.state.lock:
                self.state.set_stop(False)
            return self._send_json(200, {"ok": True})
        if head == "campaigns" and rest:
            scheduler = self.state.scheduler
            if scheduler is None:
                return self._send_json(
                    404, {"error": "campaign scheduling is not enabled"}
                )
            if scheduler.status_doc(rest[0]) is None:
                return self._send_json(
                    404, {"error": f"no campaign {rest[0]!r}"}
                )
            cancelled = scheduler.cancel(rest[0])
            return self._send_json(200, {"cancelled": cancelled})
        return self._send_json(404, {"error": f"no route {self.path}"})


class _CoordinatorHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # A restarted coordinator must rebind its old port immediately —
    # crash-restart mid-campaign is a supported path, not an edge.
    allow_reuse_address = True

    def handle_error(self, request, client_address) -> None:
        # A peer dying mid-request is an expected fault path (the
        # queue recovers via lease expiry); no stderr traceback.
        pass


class CoordinatorServer:
    """One queue directory served over HTTP.

    ``port=0`` binds an ephemeral port (see :attr:`url`); a fixed port
    lets a killed coordinator restart at the same address, which is
    what lets in-flight clients ride through on their retry budget.
    Use :meth:`start` for a background thread (tests, embedding) or
    :meth:`serve_forever` to donate the calling thread (the CLI).
    """

    def __init__(
        self,
        queue_dir: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        worker_fresh: float = 5.0,
    ) -> None:
        self.state = CoordinatorState(
            queue_dir, worker_fresh=worker_fresh
        )
        self._httpd = _CoordinatorHTTPServer(
            (host, port), _CoordinatorHandler
        )
        self._httpd.state = self.state  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        if host in ("0.0.0.0", "::", ""):
            host = "127.0.0.1"
        return f"http://{host}:{self.port}"

    def start(self) -> "CoordinatorServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, daemon=True
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "CoordinatorServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# -- client plumbing ---------------------------------------------------------


#: Exception classes that mean "the coordinator is unreachable right
#: now" — retryable, unlike an HTTP status (which is an answer).
_RETRYABLE = (
    urllib.error.URLError,  # refused/reset/unreachable (incl. timeout)
    ConnectionError,
    TimeoutError,
    socket.timeout,
    http.client.HTTPException,  # IncompleteRead, RemoteDisconnected, …
)


class CoordinatorClient:
    """Thin HTTP client with capped-exponential-backoff retries.

    Connection-level failures (refused port while the coordinator
    restarts, a reset mid-request) are retried with
    ``min(backoff_cap, backoff_base * 2**n)`` seconds of delay,
    jittered to avoid a worker fleet stampeding a freshly restarted
    coordinator in lockstep, until ``retry_timeout`` seconds have
    elapsed — then the last error propagates.  An HTTP *status* is
    never retried here: it is an answer, and the caller decides what
    it means.  ``sleep``/``clock``/``rng`` are injectable so fault
    tests run on a virtual clock.
    """

    def __init__(
        self,
        base_url: str,
        *,
        retry_timeout: float = 60.0,
        backoff_base: float = 0.1,
        backoff_cap: float = 2.0,
        request_timeout: float = 30.0,
        sleep=time.sleep,
        clock=time.monotonic,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.retry_timeout = retry_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.request_timeout = request_timeout
        self._sleep = sleep
        self._clock = clock
        self._rng = rng if rng is not None else random.Random()

    def _backoff(self, failures: int) -> float:
        delay = min(
            self.backoff_cap,
            self.backoff_base * (2.0 ** failures),
        )
        # Full jitter in (delay/2, delay]: spread without ever
        # exceeding the cap.
        return delay * (0.5 + 0.5 * self._rng.random())

    def request(
        self,
        method: str,
        path: str,
        *,
        json_body: Optional[Dict[str, Any]] = None,
        data: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
        retry: bool = True,
    ) -> Tuple[int, bytes]:
        """``(status, body)`` of one API call (retrying connections)."""
        send_headers = dict(headers or {})
        if json_body is not None:
            data = json.dumps(json_body).encode()
            send_headers["Content-Type"] = "application/json"
        started = self._clock()
        failures = 0
        while True:
            req = urllib.request.Request(
                self.base_url + path,
                data=data,
                headers=send_headers,
                method=method,
            )
            try:
                with urllib.request.urlopen(
                    req, timeout=self.request_timeout
                ) as resp:
                    return resp.status, resp.read()
            except urllib.error.HTTPError as exc:
                # A status line made it back: that is the answer.
                with exc:
                    return exc.code, exc.read()
            except _RETRYABLE:
                if not retry:
                    raise
                if self._clock() - started >= self.retry_timeout:
                    raise
                self._sleep(self._backoff(failures))
                failures += 1

    def request_json(
        self, method: str, path: str, **kwargs: Any
    ) -> Tuple[int, Dict[str, Any]]:
        status, body = self.request(method, path, **kwargs)
        try:
            doc = json.loads(body)
        except ValueError:
            doc = {}
        return status, doc if isinstance(doc, dict) else {}


# -- worker side -------------------------------------------------------------


class _HttpHeartbeat:
    """Keeps one claimed unit's lease fresh via ``PUT /heartbeat``.

    The HTTP analogue of the filesystem worker's lease-touching
    thread.  A ``410 Gone`` means the coordinator no longer recognises
    this worker's claim (expired + re-claimed, or cancelled):
    :attr:`lost` is set and the worker must abort its publish — the
    successor owns the unit now.  Connection errors are ridden out:
    the coordinator may just be restarting, and the on-disk lease
    keeps its last mtime meanwhile.
    """

    def __init__(
        self,
        client: CoordinatorClient,
        unit_id: str,
        worker_id: str,
        interval: float,
    ) -> None:
        self._client = client
        self._unit_id = unit_id
        self._worker_id = worker_id
        self._interval = max(0.05, interval)
        self._stop = threading.Event()
        self.lost = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                status, _ = self._client.request(
                    "PUT",
                    f"/heartbeat/{self._unit_id}",
                    json_body={"worker": self._worker_id},
                    retry=False,
                )
            except Exception:
                continue  # unreachable coordinator: keep trying
            if status == 410:
                self.lost.set()
                return

    def __enter__(self) -> "_HttpHeartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()


def worker_loop_http(
    url: str,
    *,
    worker_id: Optional[str] = None,
    poll_interval: float = 0.2,
    max_idle: Optional[float] = None,
    echo: bool = True,
    retry_timeout: float = 60.0,
) -> int:
    """The ``repro worker --coordinator URL`` main loop; units executed.

    The claim/execute/publish cycle of :func:`worker_loop`, with every
    queue primitive replaced by an HTTP call — so the worker host
    needs network reach to the coordinator and nothing else.  The
    coordinator answers each claim with stop/retire verdicts (the
    queue-wide and per-worker sentinels), so fleet drain and elastic
    retirement work identically to the filesystem transport.
    """
    worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    host = _host_label()
    client = CoordinatorClient(url, retry_timeout=retry_timeout)
    if echo:
        print(f"[worker {worker_id}] serving coordinator {url}",
              file=sys.stderr, flush=True)
    executed = 0
    idle_since = time.monotonic()
    while True:
        status, answer = client.request_json(
            "POST", "/claim",
            json_body={"worker": worker_id, "host": host},
        )
        if status != 200:
            raise RuntimeError(
                f"coordinator rejected claim ({status}): {answer}"
            )
        if answer.get("stop") or answer.get("retire"):
            if echo and answer.get("retire"):
                print(f"[worker {worker_id}] retiring on request",
                      file=sys.stderr, flush=True)
            break
        doc = answer.get("unit")
        if doc is None:
            if (max_idle is not None
                    and time.monotonic() - idle_since > max_idle):
                break
            time.sleep(poll_interval)
            continue
        unit_id = str(doc["unit_id"])
        heartbeat = _HttpHeartbeat(
            client, unit_id, worker_id,
            float(doc.get("heartbeat", 5.0)),
        )
        with heartbeat:
            result = run_unit_doc(doc, worker_id)
        if heartbeat.lost.is_set():
            # The coordinator disowned our lease mid-unit: a successor
            # is (or will be) computing the identical payload.  Do not
            # publish against its attempt.
            continue
        status, answer = client.request_json(
            "POST", f"/result/{unit_id}",
            data=pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL),
            headers={
                "X-Repro-Worker": worker_id,
                "X-Repro-Attempt": str(result["attempt"]),
            },
        )
        accepted = status == 200 and answer.get("accepted")
        if echo:
            verdict = ("done" if result["ok"] else "FAILED") \
                if accepted else "dropped (stale attempt)"
            print(f"[worker {worker_id}] {unit_id}: {verdict}",
                  file=sys.stderr, flush=True)
        executed += 1
        idle_since = time.monotonic()
    if echo:
        print(f"[worker {worker_id}] exiting after {executed} unit(s)",
              file=sys.stderr, flush=True)
    return executed


def _spawn_http_worker(
    url: str, worker_id: str, poll_interval: float, log_dir: str
) -> Tuple[subprocess.Popen, str]:
    """Start one local ``repro worker --coordinator`` subprocess."""
    os.makedirs(log_dir, exist_ok=True)
    log_path = os.path.join(log_dir, worker_id + ".log")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    log = open(log_path, "ab")
    try:
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--coordinator", url,
                "--worker-id", worker_id,
                "--poll", str(poll_interval),
            ],
            stdout=log,
            stderr=subprocess.STDOUT,
            env=env,
        )
    finally:
        log.close()
    return proc, log_path


class CoordinatorWorkerLauncher(WorkerLauncher):
    """Launches local workers that join a coordinator over HTTP.

    Plugged into an :class:`ElasticSupervisor` running next to the
    coordinator (``repro coordinator --max-workers N``): the
    supervisor observes the queue directory it shares with the
    coordinator and scales a colocated pool, while remote hosts join
    the same campaign with their own ``repro worker --coordinator``
    processes.
    """

    def __init__(self, url: str, log_dir: str) -> None:
        self.url = url
        self.log_dir = log_dir
        self.host = _host_label()

    def launch(
        self, worker_id: str, poll_interval: float
    ) -> Tuple[subprocess.Popen, str]:
        return _spawn_http_worker(
            self.url, worker_id, poll_interval, self.log_dir
        )


# -- dispatcher side ---------------------------------------------------------


class HttpQueueBackend(ExecutionBackend):
    """Dispatches units to a coordinator over HTTP.

    The network twin of :class:`WorkQueueBackend` — same task docs,
    same lease-expiry re-enqueue bounded by ``max_attempts``, same
    collect-before-requeue and straggler sweeping — with every queue
    primitive an API call, so the dispatcher needs no filesystem
    access to the queue at all.

    Parameters mirror :class:`WorkQueueBackend` where they exist
    there; ``retry_timeout`` bounds how long any one API call keeps
    retrying an unreachable coordinator (the ride-through budget for
    a coordinator crash/restart), and ``spawn_workers`` starts local
    ``repro worker --coordinator`` subprocesses as a convenience.
    """

    def __init__(
        self,
        url: str,
        *,
        lease_timeout: float = 60.0,
        poll_interval: float = 0.2,
        max_attempts: int = 3,
        spawn_workers: int = 0,
        idle_timeout: Optional[float] = None,
        retry_timeout: float = 60.0,
        client: Optional[CoordinatorClient] = None,
        telemetry=None,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.url = url.rstrip("/")
        self.lease_timeout = lease_timeout
        self.poll_interval = poll_interval
        self.max_attempts = max_attempts
        self.idle_timeout = idle_timeout
        #: Optional :class:`repro.telemetry.sink.TelemetrySink` for
        #: the fault-recovery events (heartbeat gaps, lease expiries,
        #: requeues, quarantines) — the HTTP twin of
        #: :class:`WorkQueueBackend`'s journal trail.
        self.telemetry = telemetry
        #: ``(unit, attempt)`` pairs already warned about via a
        #: heartbeat_gap event — one early warning per delivery.
        self._gap_warned: Set[Tuple[str, int]] = set()
        self.client = client if client is not None else CoordinatorClient(
            self.url, retry_timeout=retry_timeout
        )
        self._outstanding: Dict[str, WorkUnit] = {}
        self._attempts: Dict[str, int] = {}
        self._cancelled_ids: Set[str] = set()
        self._procs: List[subprocess.Popen] = []
        self._log_paths: List[str] = []
        self._log_dir: Optional[str] = None
        # A stale queue-wide stop sentinel from an earlier campaign
        # would retire fresh workers on their first claim.
        self._call_json("DELETE", "/stop")
        if spawn_workers:
            self._log_dir = tempfile.mkdtemp(prefix="repro-http-workers-")
            for index in range(spawn_workers):
                self._spawn_worker(index)

    # -- plumbing ------------------------------------------------------------

    def _call_json(
        self, method: str, path: str, **kwargs: Any
    ) -> Dict[str, Any]:
        status, doc = self.client.request_json(method, path, **kwargs)
        if status >= 400:
            raise RuntimeError(
                f"coordinator {method} {path} failed "
                f"({status}): {doc.get('error', doc)}"
            )
        return doc

    def _spawn_worker(self, index: int) -> None:
        worker_id = f"spawned-{_host_label()}-{os.getpid()}-{index}"
        proc, log_path = _spawn_http_worker(
            self.url, worker_id, self.poll_interval,
            self._log_dir or tempfile.gettempdir(),
        )
        self._procs.append(proc)
        self._log_paths.append(log_path)
        if self.telemetry is not None:
            self.telemetry.emit(make_event(
                "worker_spawn", worker=worker_id, host=_host_label(),
            ))

    def live_worker_count(self) -> Optional[int]:
        """Locally spawned live workers, else the coordinator's total
        fleet view (``/stats``); None only when that call fails."""
        by_host = self.workers_by_host()
        if by_host is None:
            return None
        return sum(by_host.values())

    def workers_by_host(self) -> Optional[Dict[str, int]]:
        if self._procs:
            alive = sum(
                1 for proc in self._procs if proc.poll() is None
            )
            return {_host_label(): alive} if alive else {}
        try:
            stats = self._call_json("GET", "/stats")
        except Exception:
            return None
        by_host = stats.get("workers_by_host")
        return dict(by_host) if isinstance(by_host, dict) else None

    def _check_spawned(self) -> None:
        if not self._outstanding or not self._procs:
            return
        if any(proc.poll() is None for proc in self._procs):
            return
        raise RuntimeError(
            "all spawned workers exited with "
            f"{len(self._outstanding)} unit(s) outstanding\n"
            + _log_tails(self._log_paths)
        )

    # -- submission ----------------------------------------------------------

    def _task_doc(self, unit: WorkUnit, attempt: int) -> Dict[str, Any]:
        doc = unit.to_doc()
        doc["attempt"] = attempt
        doc["heartbeat"] = max(0.05, self.lease_timeout / 4.0)
        return doc

    def submit(self, unit: WorkUnit) -> None:
        if unit.unit_id in self._outstanding:
            raise ValueError(f"unit {unit.unit_id!r} already submitted")
        self._cancelled_ids.discard(unit.unit_id)
        self._outstanding[unit.unit_id] = unit
        self._attempts[unit.unit_id] = 1
        # The coordinator sweeps the id's stale leftovers (reused
        # queue dir) before writing the fresh task doc.
        self._call_json(
            "POST", "/submit", json_body=self._task_doc(unit, attempt=1)
        )

    # -- completion ----------------------------------------------------------

    def completions(self) -> Iterator[WorkResult]:
        last_alive = time.monotonic()
        while self._outstanding:
            progressed = False
            poll = self._call_json(
                "POST", "/poll",
                json_body={
                    "unit_ids": list(self._outstanding),
                    "cancelled": list(self._cancelled_ids),
                },
            )
            for unit_id in poll.get("swept", []):
                self._cancelled_ids.discard(unit_id)
            for unit_id in poll.get("ready", []):
                if unit_id not in self._outstanding:
                    continue
                result = self._collect(unit_id)
                if result is not None:
                    progressed = True
                    yield result
            lease_ages = poll.get("lease_ages", {})
            for result in self._requeue_expired(lease_ages):
                progressed = True
                yield result
            any_live = any(
                age is not None and age <= self.lease_timeout
                for unit_id, age in lease_ages.items()
                if unit_id in self._outstanding
            )
            if progressed or any_live:
                last_alive = time.monotonic()
            if not self._outstanding:
                break
            if not progressed:
                self._check_spawned()
                if (self.idle_timeout is not None
                        and time.monotonic() - last_alive
                        > self.idle_timeout):
                    raise RuntimeError(
                        f"coordinator queue idle for "
                        f"{self.idle_timeout:.0f}s with "
                        f"{len(self._outstanding)} unit(s) outstanding "
                        "— are any workers running? (start one with: "
                        f"repro worker --coordinator {self.url})"
                    )
                time.sleep(self.poll_interval)

    def _collect(self, unit_id: str) -> Optional[WorkResult]:
        status, body = self.client.request("GET", f"/result/{unit_id}")
        if status == 404:
            return None
        if status >= 400:
            raise RuntimeError(
                f"coordinator GET /result/{unit_id} failed ({status})"
            )
        unit = self._outstanding.get(unit_id)
        try:
            doc = pickle.loads(body)
        except Exception:
            # A corrupt result over HTTP means the *queue disk* tore
            # the write (the transport length-checks every body).
            # Same recovery as the filesystem backend: quarantine the
            # evidence coordinator-side and burn an attempt.
            if unit is None:
                self._call_json("DELETE", f"/result/{unit_id}")
                return None
            self._quarantine_and_requeue(unit_id, unit)
            return None
        if unit is None:
            # Cancelled, but a straggler published anyway: consume it
            # so a reused queue directory never replays it.
            self._call_json("DELETE", f"/result/{unit_id}")
            return None
        self._call_json("DELETE", f"/result/{unit_id}")
        if not doc.get("ok"):
            raise RuntimeError(
                f"unit {unit_id} ({unit.label}) failed on worker "
                f"{doc.get('worker')}:\n{doc.get('error')}"
            )
        attempts = self._attempts.pop(unit_id)
        del self._outstanding[unit_id]
        return WorkResult(
            unit=unit,
            payload=doc["payload"],
            elapsed=float(doc.get("elapsed", 0.0)),
            worker=doc.get("worker"),
            attempts=attempts,
            timings=doc.get("timings"),
        )

    def _quarantine_and_requeue(
        self, unit_id: str, unit: WorkUnit
    ) -> None:
        attempts = self._attempts[unit_id] + 1
        if attempts > self.max_attempts:
            raise RuntimeError(
                f"unit {unit_id} ({unit.label}): corrupt result "
                f"document (quarantined coordinator-side) and the "
                f"{self.max_attempts}-attempt budget is exhausted — "
                "is the coordinator's queue filesystem tearing writes?"
            )
        self._attempts[unit_id] = attempts
        answer = self._call_json(
            "POST", f"/requeue/{unit_id}?quarantine=1",
            json_body=self._task_doc(unit, attempt=attempts),
        )
        if self.telemetry is not None:
            self.telemetry.emit(make_event(
                "quarantine", unit=unit_id,
                path=answer.get("quarantined") or "coordinator-side",
            ))
            self.telemetry.emit(make_event(
                "requeue", unit=unit_id, attempt=attempts,
            ))

    def _requeue_expired(
        self, lease_ages: Dict[str, Optional[float]]
    ) -> List[WorkResult]:
        """Re-enqueue outstanding units whose lease went stale.

        Collect-before-requeue is decided *on the coordinator*: the
        ``/requeue`` call is refused (``has_result``) when a result
        landed since the poll — the slow worker finished — and the
        unit is collected here instead of burning an attempt.
        """
        collected: List[WorkResult] = []
        for unit_id in list(self._outstanding):
            age = lease_ages.get(unit_id)
            if age is None:
                continue
            if age <= self.lease_timeout:
                # Early warning: the lease aged past half its window
                # without a heartbeat — same one-event-per-attempt
                # tripwire as the filesystem backend.
                if (self.telemetry is not None
                        and age > self.lease_timeout / 2.0):
                    key = (unit_id, self._attempts[unit_id])
                    if key not in self._gap_warned:
                        self._gap_warned.add(key)
                        self.telemetry.emit(make_event(
                            "heartbeat_gap", unit=unit_id,
                            age=round(age, 3),
                            attempt=self._attempts[unit_id],
                        ))
                continue
            attempts = self._attempts[unit_id] + 1
            if attempts > self.max_attempts:
                raise RuntimeError(
                    f"unit {unit_id} "
                    f"({self._outstanding[unit_id].label}): lease "
                    f"expired and the {self.max_attempts}-attempt "
                    "budget is exhausted (workers keep dying "
                    "mid-unit?)"
                )
            answer = self._call_json(
                "POST", f"/requeue/{unit_id}",
                json_body=self._task_doc(
                    self._outstanding[unit_id], attempt=attempts
                ),
            )
            if answer.get("has_result"):
                result = self._collect(unit_id)
                if result is not None:
                    collected.append(result)
                continue
            if self.telemetry is not None:
                self.telemetry.emit(make_event(
                    "lease_expired", unit=unit_id,
                    age=round(age, 3),
                    attempt=self._attempts[unit_id],
                ))
                self.telemetry.emit(make_event(
                    "requeue", unit=unit_id, attempt=attempts,
                ))
            self._attempts[unit_id] = attempts
        return collected

    # -- teardown ------------------------------------------------------------

    def cancel(self) -> None:
        self.cancel_units(list(self._outstanding))

    def cancel_units(self, unit_ids: Iterable[str]) -> None:
        ids = [u for u in unit_ids if u in self._outstanding]
        if not ids:
            return
        answer = self._call_json(
            "POST", "/cancel", json_body={"unit_ids": ids}
        )
        removed = answer.get("removed", {})
        for unit_id in ids:
            stages = removed.get(unit_id, {})
            # Same straggler reasoning as WorkQueueBackend: only track
            # ids a live worker might still publish.
            straggler_possible = (
                self._attempts[unit_id] > 1
                or (not stages.get("task") and not stages.get("result"))
            )
            if straggler_possible:
                self._cancelled_ids.add(unit_id)
            del self._outstanding[unit_id]
            del self._attempts[unit_id]

    def close(self) -> None:
        if self._procs:
            try:
                self._call_json("POST", "/stop")
            except Exception:
                pass  # coordinator gone: terminate the pool directly
            deadline = time.monotonic() + 10.0
            for proc in self._procs:
                _stop_proc(proc, deadline)
            self._procs = []
        if self._cancelled_ids:
            try:
                self._call_json(
                    "POST", "/poll",
                    json_body={
                        "unit_ids": [],
                        "cancelled": list(self._cancelled_ids),
                    },
                )
            except Exception:
                pass
            self._cancelled_ids = set()
