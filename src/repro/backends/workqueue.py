"""Filesystem work queue: shard dispatch to independent workers.

The queue is a directory (local disk for multi-process runs, a shared
filesystem for multi-host ones) with one subdirectory per lifecycle
stage::

    queue/
      tasks/    <unit_id>.json   pending unit (self-describing wire doc)
      leases/   <unit_id>.json   claimed unit; file mtime = heartbeat
      results/  <unit_id>.pkl    completed unit (payload or error)
      workers/  <worker_id>.*    worker heartbeat/log files (diagnostics)
      stop                       sentinel: workers drain and exit

Every file appears atomically (write to a temp name + fsync +
``os.replace``), so readers never observe a torn document no matter
when a writer dies.

**Claiming** is a single ``os.rename`` from ``tasks/`` to ``leases/``
— exactly one worker wins, no locks.  While executing, the worker
touches its lease file every ``heartbeat`` seconds (the interval rides
in the task doc, derived from the dispatcher's ``lease_timeout``).

**Dead workers**: the dispatcher re-enqueues any claimed unit whose
lease goes stale (no heartbeat for ``lease_timeout`` seconds) by
moving its doc back to ``tasks/`` with an incremented attempt count,
up to ``max_attempts``.  Unit payloads are pure functions of the wire
doc, so a re-run — even racing a worker that was merely slow, not
dead — produces bit-identical bytes; whichever result lands first is
used.

**Clean failures** (an execution raising) are *not* retried: the
worker writes an error result and the dispatcher raises it, because a
deterministic unit that failed once will fail again.

Workers are started with ``repro worker --queue DIR`` (see
:func:`worker_loop`) or spawned by the dispatcher itself
(``spawn_workers=N``).
"""

from __future__ import annotations

import importlib
import json
import os
import pickle
import socket
import subprocess
import sys
import threading
import time
import traceback
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.backends.base import (
    ExecutionBackend,
    WorkResult,
    WorkUnit,
    execute_unit,
    stamp_timings,
)
from repro.common.fsio import atomic_write_bytes
from repro.telemetry.events import make_event

TASKS_DIR = "tasks"
LEASES_DIR = "leases"
RESULTS_DIR = "results"
WORKERS_DIR = "workers"
#: Quarantine for truncated/corrupt task or result documents: the
#: evidence is preserved for diagnosis instead of being re-parsed (and
#: re-failed) on every dispatcher poll forever.
CORRUPT_DIR = "corrupt"
STOP_SENTINEL = "stop"

_SUBDIRS = (TASKS_DIR, LEASES_DIR, RESULTS_DIR, WORKERS_DIR, CORRUPT_DIR)


def _host_label() -> str:
    """This host's identity for worker ids and fleet stats.

    Worker ids generated from pids alone collide the moment two hosts
    share one queue directory (or coordinator): pid 4242's supervisor
    on host A and host B would both mint ``elastic-4242-0``, and their
    heartbeat/log/sentinel files would clobber each other.  Every
    generated id therefore carries the hostname, exactly as
    :func:`worker_loop`'s default worker id always has.
    """
    return socket.gethostname()


def ensure_queue_dirs(queue_dir: str) -> None:
    for name in _SUBDIRS:
        os.makedirs(os.path.join(queue_dir, name), exist_ok=True)


def _stop_path(queue_dir: str) -> str:
    return os.path.join(queue_dir, STOP_SENTINEL)


def _worker_info_path(queue_dir: str, worker_id: str) -> str:
    return os.path.join(queue_dir, WORKERS_DIR, worker_id + ".json")


def _worker_stop_path(queue_dir: str, worker_id: str) -> str:
    """Per-worker stop sentinel: retires *one* worker gracefully.

    Unlike the queue-wide ``stop`` sentinel, this drains a single
    worker — it finishes the unit it holds a lease on (the sentinel is
    only checked between claims) and exits, which is how the
    :class:`ElasticSupervisor` scales the pool down without ever
    abandoning a lease mid-unit.
    """
    return os.path.join(queue_dir, WORKERS_DIR, worker_id + ".stop")


def _task_path(queue_dir: str, unit_id: str) -> str:
    return os.path.join(queue_dir, TASKS_DIR, unit_id + ".json")


def _lease_path(queue_dir: str, unit_id: str) -> str:
    return os.path.join(queue_dir, LEASES_DIR, unit_id + ".json")


def _result_path(queue_dir: str, unit_id: str) -> str:
    return os.path.join(queue_dir, RESULTS_DIR, unit_id + ".pkl")


def quarantine_file(queue_dir: str, path: str) -> Optional[str]:
    """Move a corrupt queue document into ``corrupt/``; its new path.

    The move is an ``os.replace`` within the queue filesystem —
    atomic, so no reader ever sees the document half-moved — with a
    timestamp suffix so repeated corruption of the same unit never
    overwrites earlier evidence.  Returns None when the file vanished
    before it could be moved (e.g. swept by a concurrent cancel).
    """
    corrupt_dir = os.path.join(queue_dir, CORRUPT_DIR)
    os.makedirs(corrupt_dir, exist_ok=True)
    target = os.path.join(
        corrupt_dir,
        f"{os.path.basename(path)}.{time.time_ns():x}",
    )
    try:
        os.replace(path, target)
    except FileNotFoundError:
        return None
    return target


# -- worker side -------------------------------------------------------------


def _touch(path: str) -> None:
    """Refresh a heartbeat file's mtime (separable for fault tests)."""
    os.utime(path)


class _Heartbeat:
    """Touches a lease file on a background thread while a unit runs,
    so the dispatcher can tell a slow worker from a dead one.

    Thread death is **not** silent: if the beat loop raises, the
    thread records its own demise in the lease doc
    (``heartbeat_alive: false``) and forces the lease mtime stale, so
    the dispatcher re-enqueues promptly instead of waiting out the
    full lease timeout — and the worker observes :attr:`failed` and
    aborts the unit instead of publishing a result for a lease it no
    longer keeps alive (the re-enqueued attempt recomputes the
    identical payload).  Without this, a dead heartbeat under a
    healthy worker meant the dispatcher re-enqueued a unit that was
    still executing, and nobody ever learned why.
    """

    def __init__(self, path: str, interval: float) -> None:
        self._path = path
        self._interval = max(0.05, interval)
        self._stop = threading.Event()
        #: Set when the beat thread died unexpectedly: the lease can
        #: no longer be trusted to stay fresh.
        self.failed = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        try:
            while not self._stop.wait(self._interval):
                try:
                    _touch(self._path)
                except FileNotFoundError:
                    # The dispatcher re-enqueued (or the run was torn
                    # down); nothing left to keep alive.
                    return
                except OSError:
                    # Transient filesystem hiccup (NFS, EIO): keep
                    # beating — exiting here would make a healthy
                    # worker look dead and burn an attempt for
                    # nothing.
                    continue
        except BaseException:
            self._mark_dead()

    def _mark_dead(self) -> None:
        """Record the thread's death in the lease doc and go stale."""
        self.failed.set()
        try:
            with open(self._path) as handle:
                doc = json.load(handle)
            doc["heartbeat_alive"] = False
            atomic_write_bytes(self._path, json.dumps(doc).encode())
            # Force the mtime stale so the dispatcher's age check
            # expires the lease on its next poll (the doc rewrite
            # above would otherwise have *refreshed* it).
            os.utime(self._path, (0.0, 0.0))
        except (OSError, ValueError):
            pass  # best effort — the stale mtime will expire eventually

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()


def _claim_next(queue_dir: str) -> Optional[str]:
    """Claim one pending unit; its id, or None when the queue is idle.

    The claim is ``os.rename(tasks/X, leases/X)`` — atomic, exactly
    one winner per task file.  The fresh lease is touched immediately:
    the renamed file keeps the *task's* mtime, which may already be
    older than the lease timeout if the unit waited long for a free
    worker.
    """
    tasks_dir = os.path.join(queue_dir, TASKS_DIR)
    try:
        names = sorted(os.listdir(tasks_dir))
    except FileNotFoundError:
        return None
    for name in names:
        if not name.endswith(".json"):
            continue
        unit_id = name[: -len(".json")]
        try:
            os.rename(
                os.path.join(tasks_dir, name),
                _lease_path(queue_dir, unit_id),
            )
        except FileNotFoundError:
            continue  # another worker won this one
        os.utime(_lease_path(queue_dir, unit_id))
        return unit_id
    return None


def _release_lease(lease_path: str, worker_id: str) -> None:
    """Remove the lease only if this worker still owns it.

    A unit re-enqueued while this worker was merely slow (not dead)
    may since have been claimed by another worker — that successor's
    fresh lease must survive the predecessor finishing late, or the
    successor would look dead while actively computing.

    The check-then-remove must not be a read followed by an unlink:
    between reading the owner and unlinking, an expiry re-enqueue plus
    a successor claim can land, and the unlink would then destroy the
    *successor's* live lease (it would sit leaseless while actively
    computing, look dead, and burn an attempt — or the budget).  So
    the release captures the file first with an atomic
    rename-to-tombstone, verifies ownership on the captured copy, and
    either completes the release (unlink the tombstone) or undoes the
    capture (rename it back) when the lease turned out to belong to
    someone else — including the not-yet-stamped window after a
    successor's claim, where the doc carries no owner at all.
    """
    tombstone = f"{lease_path}.releasing.{worker_id}"
    try:
        os.rename(lease_path, tombstone)
    except OSError:
        return  # already gone (expired/cancelled) — nothing to release
    try:
        with open(tombstone) as handle:
            owner = json.load(handle).get("worker")
    except (OSError, ValueError):
        owner = None  # torn/corrupt capture: treat as not provably ours
    if owner == worker_id:
        try:
            os.unlink(tombstone)
        except FileNotFoundError:
            pass
        return
    # Someone else's lease (or an unstamped claim): restore it.  The
    # capture window is a few syscalls wide; a successor heartbeat
    # touching the momentarily-missing path merely skips one beat.  If
    # the successor re-wrote the path meanwhile (its ownership stamp),
    # the newer doc wins and the stale capture is dropped instead of
    # renamed over it.
    try:
        if os.path.exists(lease_path):
            os.unlink(tombstone)
        else:
            os.rename(tombstone, lease_path)
    except OSError:
        pass


def run_unit_doc(doc: Dict[str, Any], worker_id: str) -> Dict[str, Any]:
    """Execute one wire-form unit doc; the result doc to publish.

    The single execution path every worker transport shares (the
    filesystem queue's :func:`_execute_claimed` and the HTTP worker in
    :mod:`repro.backends.coordinator`): kind-module side-effect import,
    payload computation, and clean-failure capture — so a unit doc
    produces byte-identical result docs no matter which transport
    delivered it.
    """
    result: Dict[str, Any] = {
        "worker": worker_id,
        "attempt": int(doc.get("attempt", 1)),
    }
    started, cpu0 = time.time(), time.process_time()
    try:
        module = doc.get("kind_module")
        if module:
            # Registers kinds defined outside the built-ins (same
            # trick as pickling run-fn references to a process pool:
            # importing the module re-runs its register_experiment
            # side effects).
            importlib.import_module(module)
        payload, elapsed = execute_unit(WorkUnit.from_doc(doc))
        # Phase timings are execution-only metadata riding next to
        # the payload (like EXECUTION_PARAMS stays out of spec
        # identity): telemetry reads them, payload bytes never
        # depend on them.
        result.update(
            ok=True, payload=payload, elapsed=elapsed,
            timings=stamp_timings(started, cpu0),
        )
    except Exception:
        result.update(ok=False, error=traceback.format_exc())
    return result


def _execute_claimed(
    queue_dir: str, unit_id: str, worker_id: str
) -> Optional[bool]:
    """Run one claimed unit and publish its result.

    True/False for success/failure; None when the claim was lost
    before execution (the dispatcher re-enqueued the unit between the
    claim rename and this read — possible when the task file sat
    unclaimed past the lease timeout, since the rename preserves its
    stale mtime).
    """
    lease_path = _lease_path(queue_dir, unit_id)
    try:
        with open(lease_path) as handle:
            doc = json.load(handle)
    except FileNotFoundError:
        return None
    # Stamp ownership (and refresh the heartbeat) so a slow
    # predecessor finishing late cannot tear down this lease.
    doc["worker"] = worker_id
    atomic_write_bytes(lease_path, json.dumps(doc).encode())
    heartbeat = _Heartbeat(lease_path, float(doc.get("heartbeat", 5.0)))
    with heartbeat:
        result = run_unit_doc(doc, worker_id)
    if heartbeat.failed.is_set():
        # The beat thread died mid-unit: the lease went stale with us
        # still executing, so the dispatcher has (or will) re-enqueue
        # this unit to a healthy worker.  Abort — publishing now would
        # claim an outcome for a lease we stopped keeping alive; the
        # retry recomputes the identical payload.
        return None
    atomic_write_bytes(
        _result_path(queue_dir, unit_id),
        pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL),
    )
    _release_lease(lease_path, worker_id)
    return bool(result["ok"])


def worker_loop(
    queue_dir: str,
    *,
    worker_id: Optional[str] = None,
    poll_interval: float = 0.2,
    max_idle: Optional[float] = None,
    echo: bool = True,
) -> int:
    """The ``repro worker`` main loop; returns units executed.

    Claims and executes units until the queue's ``stop`` sentinel (or
    this worker's own ``workers/<id>.stop`` retirement sentinel)
    appears or — when ``max_idle`` is set — no work arrived for that
    many seconds.  Both sentinels are checked only between units, so a
    draining worker always finishes the lease it holds.  The worker's
    ``workers/<id>.json`` info file doubles as a liveness heartbeat
    (touched every loop iteration while idle; a busy worker's
    liveness shows in its lease instead).  Workers are stateless:
    everything a unit needs rides in its task document, so any number
    of workers on any hosts sharing the directory can serve one
    campaign.
    """
    worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    ensure_queue_dirs(queue_dir)
    info_path = _worker_info_path(queue_dir, worker_id)
    atomic_write_bytes(
        info_path,
        json.dumps({
            "worker_id": worker_id,
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "started": time.time(),
        }).encode(),
    )
    if echo:
        print(f"[worker {worker_id}] serving queue {queue_dir}",
              file=sys.stderr, flush=True)
    executed = 0
    idle_since = time.monotonic()
    while True:
        if os.path.exists(_stop_path(queue_dir)):
            break
        if os.path.exists(_worker_stop_path(queue_dir, worker_id)):
            if echo:
                print(f"[worker {worker_id}] retiring on request",
                      file=sys.stderr, flush=True)
            break
        try:
            os.utime(info_path)
        except OSError:
            pass  # liveness is advisory; the loop matters more
        unit_id = _claim_next(queue_dir)
        if unit_id is None:
            if (max_idle is not None
                    and time.monotonic() - idle_since > max_idle):
                break
            time.sleep(poll_interval)
            continue
        ok = _execute_claimed(queue_dir, unit_id, worker_id)
        if ok is None:
            continue  # claim lost to a re-enqueue race; move on
        if echo:
            status = "done" if ok else "FAILED"
            print(f"[worker {worker_id}] {unit_id}: {status}",
                  file=sys.stderr, flush=True)
        executed += 1
        idle_since = time.monotonic()
    if echo:
        print(f"[worker {worker_id}] exiting after {executed} unit(s)",
              file=sys.stderr, flush=True)
    return executed


# -- elastic worker supervision ----------------------------------------------


def _stop_proc(proc: subprocess.Popen, deadline: float) -> None:
    """Wait for a worker process until ``deadline`` (monotonic), then
    escalate terminate → kill.  The one stop ladder every teardown
    path shares."""
    try:
        proc.wait(timeout=max(0.1, deadline - time.monotonic()))
    except subprocess.TimeoutExpired:
        proc.terminate()
        try:
            proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


#: Bytes of log tail read per file for crash diagnostics.  Worker logs
#: grow unbounded on long campaigns; a diagnostic must never slurp a
#: multi-gigabyte log into memory to show its last 20 lines.
_LOG_TAIL_BYTES = 4096


def _log_tails(paths: Iterable[str], lines: int = 20) -> str:
    """The last ``lines`` of each worker log, joined for diagnostics.

    Reads only the final :data:`_LOG_TAIL_BYTES` of each file — the
    first line of a mid-file seek may be torn, which is fine for a
    crash tail.
    """
    tails = []
    for path in paths:
        try:
            with open(path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                handle.seek(max(0, size - _LOG_TAIL_BYTES))
                data = handle.read(_LOG_TAIL_BYTES)
        except OSError:
            continue
        text = data.decode("utf-8", errors="replace")
        tails.append(
            f"--- {path} ---\n"
            + "\n".join(text.splitlines()[-lines:])
        )
    return "\n".join(tails)


def _cleanup_worker_files(queue_dir: str, worker_id: str) -> None:
    """Remove a gone worker's sentinel + heartbeat litter."""
    for path in (
        _worker_stop_path(queue_dir, worker_id),
        _worker_info_path(queue_dir, worker_id),
    ):
        try:
            os.unlink(path)
        except OSError:
            pass


def _spawn_worker_process(
    queue_dir: str, worker_id: str, poll_interval: float
) -> "tuple[subprocess.Popen, str]":
    """Start one ``repro worker`` subprocess serving ``queue_dir``.

    Returns ``(process, log path)``; the worker's stdout/stderr land in
    ``workers/<id>.log`` for post-mortem diagnostics.
    """
    log_path = os.path.join(queue_dir, WORKERS_DIR, worker_id + ".log")
    env = dict(os.environ)
    # Guarantee the child resolves `repro` exactly as we do, even when
    # the package is importable only via sys.path mutations (pytest
    # rootdir conftest, PYTHONPATH=src invocations).
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    log = open(log_path, "ab")
    try:
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--queue", queue_dir,
                "--worker-id", worker_id,
                "--poll", str(poll_interval),
            ],
            stdout=log,
            stderr=subprocess.STDOUT,
            env=env,
        )
    finally:
        log.close()  # the child holds its own handle
    return proc, log_path


class WorkerLauncher:
    """Where and how an :class:`ElasticSupervisor` starts one worker.

    The supervisor's scaling loop is transport-agnostic: it decides
    *when* the pool grows or drains from queue pressure, and delegates
    *how* a worker process comes to exist to a launcher.  A launcher
    is host-aware (:attr:`host` labels where its workers run) so fleet
    stats can aggregate per host; today's launchers start local
    subprocesses — one serving a queue directory, one joining a
    coordinator over HTTP — and the same seam is where SSH/container
    launchers plug in without touching the scaling logic.
    """

    #: Host label the launched workers run on (fleet-stats key).
    host: str = "localhost"

    def launch(
        self, worker_id: str, poll_interval: float
    ) -> "tuple[subprocess.Popen, str]":
        """Start one worker; ``(process handle, log path)``."""
        raise NotImplementedError

    def describe(self) -> str:
        return f"{type(self).__name__} on {self.host}"


class QueueWorkerLauncher(WorkerLauncher):
    """Launches local ``repro worker --queue DIR`` subprocesses — the
    original (and default) launcher for filesystem-served queues."""

    def __init__(self, queue_dir: str) -> None:
        self.queue_dir = queue_dir
        self.host = _host_label()

    def launch(
        self, worker_id: str, poll_interval: float
    ) -> "tuple[subprocess.Popen, str]":
        return _spawn_worker_process(
            self.queue_dir, worker_id, poll_interval
        )


@dataclass
class ElasticStats:
    """Lifetime counters of one :class:`ElasticSupervisor`."""

    spawned: int = 0
    retired: int = 0
    peak_workers: int = 0


class ElasticSupervisor:
    """Scales local ``repro worker`` processes with queue pressure.

    A fixed worker pool wastes one of two ways: too few workers leave
    pending units queueing behind a long tail, too many burn idle
    processes once an early-stopped campaign's cancels drain the
    queue.  The supervisor watches the queue directory and keeps the
    spawned pool between ``min_workers`` and ``max_workers``:

    * **demand** — pending task files plus leases not attributably
      held by someone else (a lease stamped with an external worker's
      id is already being served and needs no new worker);
    * **serving** — the supervisor's own live workers plus externally
      started workers with a fresh ``workers/<id>.json`` heartbeat
      (busy externals advertise liveness through their stamped lease
      instead);
    * **scale up** whenever units sit unclaimed and the pool is below
      ``min(demand, max_workers)`` — and always back up to
      ``min_workers``;
    * **scale down** — only after the queue has stayed drained for
      ``idle_grace`` seconds — by writing *per-worker* stop sentinels
      (``workers/<id>.stop``): a retiring worker finishes the unit it
      holds a lease on and exits, so retirement never abandons a
      lease mid-unit.

    Run it on a background thread (:meth:`start`/:meth:`shutdown`,
    what :class:`WorkQueueBackend` does) or drive :meth:`tick`
    directly for deterministic tests.  Scaling only changes *when*
    units execute, never what they compute — payloads stay
    bit-identical at any pool size.
    """

    def __init__(
        self,
        queue_dir: str,
        *,
        min_workers: int = 1,
        max_workers: int = 4,
        poll_interval: float = 0.2,
        idle_grace: float = 2.0,
        worker_poll: float = 0.2,
        heartbeat_fresh: float = 2.0,
        clock=time.monotonic,
        launcher: Optional[WorkerLauncher] = None,
        telemetry=None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if not 0 <= min_workers <= max_workers:
            raise ValueError(
                "need 0 <= min_workers <= max_workers "
                f"(got {min_workers}..{max_workers})"
            )
        self.queue_dir = queue_dir
        #: How new workers are started (and on which host) — the
        #: fleet seam; defaults to local ``repro worker --queue``
        #: subprocesses.
        self.launcher = (
            launcher if launcher is not None
            else QueueWorkerLauncher(queue_dir)
        )
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.poll_interval = poll_interval
        self.idle_grace = idle_grace
        self.worker_poll = worker_poll
        self.heartbeat_fresh = heartbeat_fresh
        self.clock = clock
        #: Optional :class:`repro.telemetry.sink.TelemetrySink`:
        #: scaling decisions (with their queue-pressure inputs) and
        #: worker spawn/retire/crash events go here when set.
        self.telemetry = telemetry
        ensure_queue_dirs(queue_dir)
        self.stats = ElasticStats()
        #: Workers that exited without being asked to retire
        #: (lifetime count, for reporting).
        self.abnormal_exits = 0
        #: ``(monotonic time, worker id)`` of recent abnormal exits —
        #: the crash-*loop* signal (a crash an hour ago is not a
        #: loop), with the ids for the diagnosis message.
        self._abnormal_at: List[Tuple[float, str]] = []
        #: Seconds within which repeated crashes count as a loop.
        self.crash_window = 60.0
        #: When tick() started failing (None = healthy) + the last
        #: traceback, so persistent breakage has a diagnosis.  The
        #: judgment is time-based: a transient NFS/EIO blip spans a
        #: few 0.2s ticks and must not read as "cannot scale".
        self._tick_failing_since: Optional[float] = None
        self.tick_failure_grace = 30.0
        self.last_error: Optional[str] = None
        self._procs: Dict[str, subprocess.Popen] = {}
        self._retiring: Dict[str, subprocess.Popen] = {}
        self._log_paths: Dict[str, str] = {}
        self._seq = 0
        self._surplus_since: Optional[float] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: Guards the pool dicts: the supervisor's own loop thread and
        #: the dispatcher thread (check_health, live_worker_count)
        #: both reap.
        self._lock = threading.RLock()

    # -- observation ---------------------------------------------------------

    def _count_dir(self, name: str) -> int:
        try:
            return sum(
                1
                for entry in os.listdir(os.path.join(self.queue_dir, name))
                if entry.endswith(".json")
            )
        except FileNotFoundError:
            return 0

    def queue_depth(self) -> int:
        """Pending (unclaimed) units waiting for a worker."""
        return self._count_dir(TASKS_DIR)

    def lease_count(self) -> int:
        """Units currently executing somewhere."""
        return self._count_dir(LEASES_DIR)

    def _external_lease_count(self) -> int:
        """Leases stamped with an external worker's id.

        Those units are already being served by capacity we do not
        manage — counting them as demand would spawn a redundant local
        worker per busy external one.  A lease not yet stamped (the
        claim-to-stamp window) stays conservative: it counts as
        demand.
        """
        own = set(self._procs) | set(self._retiring)
        leases_dir = os.path.join(self.queue_dir, LEASES_DIR)
        try:
            names = os.listdir(leases_dir)
        except FileNotFoundError:
            return 0
        external = 0
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(leases_dir, name)) as handle:
                    owner = json.load(handle).get("worker")
            except (OSError, ValueError):
                continue  # torn read/claim race: treat as demand
            if owner and owner not in own:
                external += 1
        return external

    def _fresh_externals(self) -> Dict[str, str]:
        """``{worker id: host}`` of externally-started workers with a
        fresh idle heartbeat (busy externals advertise liveness
        through their stamped lease instead)."""
        own = set(self._procs) | set(self._retiring)
        workers_dir = os.path.join(self.queue_dir, WORKERS_DIR)
        try:
            names = os.listdir(workers_dir)
        except FileNotFoundError:
            return {}
        fresh: Dict[str, str] = {}
        now = time.time()
        for name in names:
            if not name.endswith(".json"):
                continue
            worker_id = name[: -len(".json")]
            if worker_id in own:
                continue
            path = os.path.join(workers_dir, name)
            try:
                age = now - os.stat(path).st_mtime
            except FileNotFoundError:
                continue
            if age > self.heartbeat_fresh:
                continue
            try:
                with open(path) as handle:
                    host = json.load(handle).get("host") or "external"
            except (OSError, ValueError):
                host = "external"
            fresh[worker_id] = host
        return fresh

    def _fresh_external_workers(self) -> int:
        """Externally-started workers with a fresh idle heartbeat."""
        return len(self._fresh_externals())

    def live_worker_count(self) -> int:
        """Workers believed to be serving the queue right now (the
        supervisor's own pool plus heartbeat-fresh externals)."""
        with self._lock:
            self._reap()
            alive = sum(
                1 for proc in self._retiring.values()
                if proc.poll() is None
            )
            return len(self._procs) + alive \
                + self._fresh_external_workers()

    def workers_by_host(self) -> Dict[str, int]:
        """Live workers aggregated per host: the supervisor's own pool
        (every worker on :attr:`launcher` ``.host``) plus
        heartbeat-fresh externals under the host their info doc
        advertises.  The fleet operator's gauge — on a shared queue it
        shows each joined machine's contribution, not one number."""
        with self._lock:
            self._reap()
            counts: Dict[str, int] = {}
            own = len(self._procs) + sum(
                1 for proc in self._retiring.values()
                if proc.poll() is None
            )
            if own:
                counts[self.launcher.host] = own
            for host in self._fresh_externals().values():
                counts[host] = counts.get(host, 0) + 1
            return counts

    # -- pool mutation -------------------------------------------------------

    def _spawn_one(self) -> None:
        # Host-qualified: supervisors on two hosts sharing one queue
        # (same pid by coincidence) must never mint the same id.
        worker_id = (
            f"elastic-{self.launcher.host}-{os.getpid()}-{self._seq}"
        )
        self._seq += 1
        proc, log_path = self.launcher.launch(
            worker_id, self.worker_poll
        )
        self._procs[worker_id] = proc
        self._log_paths[worker_id] = log_path
        self.stats.spawned += 1
        self.stats.peak_workers = max(
            self.stats.peak_workers, len(self._procs)
        )
        if self.telemetry is not None:
            self.telemetry.emit(make_event(
                "worker_spawn",
                worker=worker_id, host=self.launcher.host,
            ))

    def _retire_one(self) -> None:
        """Drain the newest worker via its per-worker stop sentinel."""
        worker_id = next(reversed(self._procs))
        proc = self._procs.pop(worker_id)
        atomic_write_bytes(
            _worker_stop_path(self.queue_dir, worker_id), b""
        )
        self._retiring[worker_id] = proc
        self.stats.retired += 1
        if self.telemetry is not None:
            self.telemetry.emit(make_event(
                "worker_retire",
                worker=worker_id, host=self.launcher.host,
            ))

    def _reap(self) -> None:
        """Collect exited processes and their queue-side litter.

        Caller holds ``_lock`` (both the supervisor loop and the
        dispatcher thread reap; unsynchronised deletes would race).
        """
        for worker_id, proc in list(self._retiring.items()):
            if proc.poll() is None:
                continue
            del self._retiring[worker_id]
            _cleanup_worker_files(self.queue_dir, worker_id)
        for worker_id, proc in list(self._procs.items()):
            if proc.poll() is None:
                continue
            # Exited without being retired: idle-timeout or a crash.
            del self._procs[worker_id]
            if proc.returncode != 0:
                self.abnormal_exits += 1
                self._abnormal_at.append((self.clock(), worker_id))
                if self.telemetry is not None:
                    self.telemetry.emit(make_event(
                        "worker_crash",
                        worker=worker_id, host=self.launcher.host,
                        returncode=proc.returncode,
                    ))
            # A fresh leftover heartbeat must not read as an external
            # worker and suppress the replacement spawn.
            _cleanup_worker_files(self.queue_dir, worker_id)

    # -- the scaling decision ------------------------------------------------

    def tick(self) -> None:
        """One observe-and-scale step (idempotent, any call rate)."""
        with self._lock:
            self._reap()
            pending = self.queue_depth()
            busy = self.lease_count() - self._external_lease_count()
            demand = pending + max(0, busy)
            own = len(self._procs)
            target = min(
                self.max_workers,
                max(self.min_workers,
                    demand - self._fresh_external_workers()),
            )
            if own < target and (pending > 0 or own < self.min_workers):
                self._emit_scale("spawn", pending, busy, own, target)
                for _ in range(target - own):
                    self._spawn_one()
                self._surplus_since = None
            elif own > target and pending == 0:
                # Sustained surplus only: a gap between two cells of
                # one campaign must not trigger a spawn/retire thrash.
                now = self.clock()
                if self._surplus_since is None:
                    self._surplus_since = now
                elif now - self._surplus_since >= self.idle_grace:
                    self._emit_scale(
                        "retire", pending, busy, own, target
                    )
                    for _ in range(own - target):
                        self._retire_one()
                    self._surplus_since = None
            else:
                self._surplus_since = None

    def _emit_scale(
        self, action: str, pending: int, busy: int, own: int,
        target: int,
    ) -> None:
        """Journal one scaling decision with the queue-pressure
        inputs that drove it — the record feedback-controlled
        scheduling will learn from."""
        if self.telemetry is None:
            return
        self.telemetry.emit(make_event(
            "scale",
            action=action, pending=pending, busy=busy,
            own=own, target=target,
        ))

    def check_health(self) -> None:
        """Raise when the pool demonstrably cannot serve.

        The dispatcher calls this while units are outstanding.  As
        long as *anyone* is serving — an own worker, a draining
        retiree, a fresh external — nothing raises: in-flight work
        must never be failed over a scaling problem.  With nobody
        serving, two failure classes surface instead of letting the
        campaign sit until the idle watchdog fires with a misleading
        message:

        * a **crash loop** — ≥3 abnormal worker exits within
          ``crash_window`` seconds (isolated crashes hours apart
          recover via respawn and must *not* abort a healthy
          campaign);
        * **scaling itself broken** — tick() failing continuously for
          ``tick_failure_grace`` seconds (spawn raising: fork
          pressure, unwritable ``workers/``, broken interpreter
          path), which produces no processes and therefore no
          abnormal exits; the stored traceback is the diagnosis.  A
          transient filesystem blip spanning a few ticks stays below
          the grace and is tolerated, matching the heartbeat's
          own forgive-transients rule.
        """
        with self._lock:
            self._reap()
            now = self.clock()
            alive_retiring = any(
                proc.poll() is None for proc in self._retiring.values()
            )
            if self._procs or alive_retiring \
                    or self._fresh_external_workers():
                # Someone is still serving: neither a broken scale-up
                # nor past crashes justify failing in-flight work.
                return
            if (self._tick_failing_since is not None
                    and now - self._tick_failing_since
                    >= self.tick_failure_grace):
                raise RuntimeError(
                    "elastic supervisor cannot scale the pool "
                    f"(tick failing for "
                    f"{now - self._tick_failing_since:.0f}s); "
                    "last error:\n" + (self.last_error or "<unknown>")
                )
            self._abnormal_at = [
                entry for entry in self._abnormal_at
                if now - entry[0] <= self.crash_window
            ]
            if len(self._abnormal_at) < 3:
                return
            # Ids are host-qualified at mint time (elastic-<host>-…),
            # so on a shared multi-host queue the message names which
            # machine's workers are dying — and the tails shown are
            # the crashed workers' own logs, not just the newest.
            crashed = [worker for _, worker in self._abnormal_at]
            raise RuntimeError(
                f"elastic supervisor: {len(self._abnormal_at)} "
                f"worker(s) crashed within {self.crash_window:.0f}s "
                f"and none are running: {', '.join(crashed)}\n"
                + _log_tails([
                    self._log_paths[worker]
                    for worker in crashed[-3:]
                    if worker in self._log_paths
                ])
            )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ElasticSupervisor":
        """Run :meth:`tick` on a daemon thread until :meth:`shutdown`."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()
        return self

    def _guarded_tick(self) -> None:
        """One tick that records failures instead of raising.

        Transient filesystem trouble must not kill the scaling loop;
        *persistent* breakage (spawn raising every time) is counted
        and surfaced — with its traceback — by :meth:`check_health`,
        because a spawn that never produces a process also never
        produces the abnormal exits the crash-loop check looks for.
        """
        try:
            self.tick()
        except Exception:
            with self._lock:
                if self._tick_failing_since is None:
                    self._tick_failing_since = self.clock()
                self.last_error = traceback.format_exc()
        else:
            with self._lock:
                self._tick_failing_since = None

    def _loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            self._guarded_tick()

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop scaling and tear the pool down (idempotent).

        The caller is expected to have written the queue-wide stop
        sentinel first (``WorkQueueBackend.close`` does), so workers
        drain; stragglers are terminated, then killed.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        with self._lock:
            procs = {**self._procs, **self._retiring}
            self._procs = {}
            self._retiring = {}
        deadline = time.monotonic() + timeout
        for worker_id, proc in procs.items():
            _stop_proc(proc, deadline)
            _cleanup_worker_files(self.queue_dir, worker_id)


# -- dispatcher side ---------------------------------------------------------


class WorkQueueBackend(ExecutionBackend):
    """Dispatches units through a filesystem queue to ``repro worker``
    processes, with lease-based failure recovery.

    Parameters
    ----------
    queue_dir:
        The queue directory (created if missing).  Share it between
        the dispatcher and every worker — local path for same-host
        workers, network filesystem for cross-host ones.
    lease_timeout:
        Seconds without a heartbeat after which a claimed unit's
        worker is presumed dead and the unit is re-enqueued.
    max_attempts:
        Total tries (1 + re-enqueues) a unit gets before the campaign
        fails; guards against a unit that keeps killing workers.
    spawn_workers:
        Convenience: start this many local ``repro worker`` processes
        alongside the dispatcher (their logs land in
        ``queue/workers/``); they are stopped again by :meth:`close`.
        A *fixed* pool — for one that scales with queue pressure use
        ``max_workers`` instead (the two are mutually exclusive).
    idle_timeout:
        Optional watchdog: raise if no completion arrived *and* no
        live lease was observed for this many seconds (e.g. nobody
        ever started a worker).  None waits forever.
    min_workers / max_workers:
        Elastic mode: attach an :class:`ElasticSupervisor` that keeps
        the spawned pool between the two bounds, growing it while
        units queue and draining surplus workers (via per-worker stop
        sentinels, so a retiring worker finishes its lease) once the
        queue empties.  ``max_workers`` enables the mode;
        ``min_workers`` defaults to 1.
    """

    def __init__(
        self,
        queue_dir: str,
        *,
        lease_timeout: float = 60.0,
        poll_interval: float = 0.2,
        max_attempts: int = 3,
        spawn_workers: int = 0,
        idle_timeout: Optional[float] = None,
        min_workers: Optional[int] = None,
        max_workers: Optional[int] = None,
        elastic_idle_grace: float = 2.0,
        telemetry=None,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if min_workers is not None and max_workers is None:
            raise ValueError("min_workers needs max_workers (elastic mode)")
        if max_workers is not None and spawn_workers:
            raise ValueError(
                "spawn_workers (fixed pool) and max_workers (elastic "
                "pool) are mutually exclusive"
            )
        self.queue_dir = queue_dir
        self.lease_timeout = lease_timeout
        self.poll_interval = poll_interval
        self.max_attempts = max_attempts
        self.idle_timeout = idle_timeout
        #: Optional :class:`repro.telemetry.sink.TelemetrySink` for
        #: the queue's fault-recovery events (heartbeat gaps, lease
        #: expiries, requeues, quarantines); shared with the attached
        #: elastic supervisor.
        self.telemetry = telemetry
        #: ``(unit, attempt)`` pairs already warned about via a
        #: heartbeat_gap event — one early warning per delivery.
        self._gap_warned: Set[Tuple[str, int]] = set()
        ensure_queue_dirs(queue_dir)
        # A stale sentinel from a previous campaign would make fresh
        # workers exit immediately.
        try:
            os.unlink(_stop_path(queue_dir))
        except FileNotFoundError:
            pass
        self._outstanding: Dict[str, WorkUnit] = {}
        self._attempts: Dict[str, int] = {}
        #: Cancelled unit ids whose straggler results must be swept.
        self._cancelled_ids: Set[str] = set()
        self._procs: List[subprocess.Popen] = []
        self._log_paths: List[str] = []
        self.supervisor: Optional[ElasticSupervisor] = None
        if max_workers is not None:
            self.supervisor = ElasticSupervisor(
                queue_dir,
                min_workers=1 if min_workers is None else min_workers,
                max_workers=max_workers,
                poll_interval=poll_interval,
                idle_grace=elastic_idle_grace,
                worker_poll=poll_interval,
                telemetry=telemetry,
            ).start()
        for index in range(spawn_workers):
            self._spawn_worker(index)

    # -- worker management ---------------------------------------------------

    def _spawn_worker(self, index: int) -> None:
        # Host-qualified for the same reason as the elastic ids: two
        # dispatch hosts sharing one queue directory must not collide
        # on a coincidental pid match.
        worker_id = f"spawned-{_host_label()}-{os.getpid()}-{index}"
        proc, log_path = _spawn_worker_process(
            self.queue_dir, worker_id, self.poll_interval
        )
        self._procs.append(proc)
        self._log_paths.append(log_path)
        if self.telemetry is not None:
            self.telemetry.emit(make_event(
                "worker_spawn", worker=worker_id, host=_host_label(),
            ))

    def live_worker_count(self) -> Optional[int]:
        """Workers serving the queue, or None when unknowable (no
        spawned pool and no supervisor — externally-served queues
        report through ``workers/`` heartbeats only, which this
        dispatcher does not insist on)."""
        if self.supervisor is not None:
            return self.supervisor.live_worker_count()
        if self._procs:
            return sum(1 for proc in self._procs if proc.poll() is None)
        return None

    def workers_by_host(self) -> Optional[Dict[str, int]]:
        """Live workers per host, or None when unknowable (same
        conditions as :meth:`live_worker_count`)."""
        if self.supervisor is not None:
            return self.supervisor.workers_by_host()
        if self._procs:
            alive = sum(
                1 for proc in self._procs if proc.poll() is None
            )
            return {_host_label(): alive} if alive else {}
        return None

    def _check_spawned(self) -> None:
        if not self._outstanding:
            return
        if self.supervisor is not None:
            # Elastic pools shrink to empty by design; what must not
            # pass silently is workers crashing as fast as they spawn.
            self.supervisor.check_health()
            return
        if not self._procs:
            return
        if any(proc.poll() is None for proc in self._procs):
            return
        raise RuntimeError(
            "all spawned workers exited with "
            f"{len(self._outstanding)} unit(s) outstanding\n"
            + _log_tails(self._log_paths)
        )

    # -- submission ----------------------------------------------------------

    def _task_doc(self, unit: WorkUnit, attempt: int) -> bytes:
        doc = unit.to_doc()
        doc["attempt"] = attempt
        # Workers heartbeat a few times per lease window so one missed
        # beat (scheduler hiccup, slow NFS) is not a death sentence.
        doc["heartbeat"] = max(0.05, self.lease_timeout / 4.0)
        return json.dumps(doc).encode()

    def submit(self, unit: WorkUnit) -> None:
        if unit.unit_id in self._outstanding:
            raise ValueError(f"unit {unit.unit_id!r} already submitted")
        # Unit ids are deterministic, so a reused queue directory may
        # hold this id's leftovers from an earlier campaign (a
        # consumed-then-raised error result, an orphaned lease, a
        # cancelled task).  Sweep them, or completions() would replay
        # the stale outcome instead of dispatching fresh work.
        for stale in (
            _result_path(self.queue_dir, unit.unit_id),
            _lease_path(self.queue_dir, unit.unit_id),
            _task_path(self.queue_dir, unit.unit_id),
        ):
            try:
                os.unlink(stale)
            except FileNotFoundError:
                pass
        self._cancelled_ids.discard(unit.unit_id)
        self._outstanding[unit.unit_id] = unit
        self._attempts[unit.unit_id] = 1
        atomic_write_bytes(
            _task_path(self.queue_dir, unit.unit_id),
            self._task_doc(unit, attempt=1),
        )

    # -- completion ----------------------------------------------------------

    def completions(self) -> Iterator[WorkResult]:
        last_alive = time.monotonic()
        while self._outstanding:
            progressed = False
            for unit_id in list(self._outstanding):
                result = self._collect(unit_id)
                if result is not None:
                    progressed = True
                    yield result
            # Expiry pass second: a result that landed while its lease
            # was going stale is *collected* there, never re-enqueued.
            for result in self._requeue_expired():
                progressed = True
                yield result
            self._sweep_cancelled()
            if progressed or self._any_live_lease():
                last_alive = time.monotonic()
            if not self._outstanding:
                break
            if not progressed:
                self._check_spawned()
                if (self.idle_timeout is not None
                        and time.monotonic() - last_alive
                        > self.idle_timeout):
                    raise RuntimeError(
                        f"work queue idle for {self.idle_timeout:.0f}s "
                        f"with {len(self._outstanding)} unit(s) "
                        "outstanding — are any workers running? "
                        f"(start one with: repro worker --queue "
                        f"{self.queue_dir})"
                    )
                time.sleep(self.poll_interval)

    def _collect(self, unit_id: str) -> Optional[WorkResult]:
        path = _result_path(self.queue_dir, unit_id)
        try:
            with open(path, "rb") as handle:
                doc = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated/corrupt result document (a torn write on a
            # non-atomic shared filesystem, disk trouble).  Treating
            # it as absent would re-parse and re-fail it on every poll
            # forever — the dispatcher would sit on a unit that can
            # never complete.  Quarantine the evidence and re-enqueue
            # the unit (counting against max_attempts, like any other
            # failed delivery).
            doc = None
        unit = self._outstanding.get(unit_id)
        if unit is None:
            # Cancelled mid-drain, but a straggler worker published its
            # result after the cancel swept the file: consume the
            # orphan now so a reused queue directory never replays it.
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
            return None
        if doc is None:
            self._quarantine_and_requeue(unit_id, unit, path)
            return None
        if not doc.get("ok"):
            # Consume the error result: leaving it on disk would make
            # a reused queue directory replay this failure forever.
            os.unlink(path)
            raise RuntimeError(
                f"unit {unit_id} ({unit.label}) failed on worker "
                f"{doc.get('worker')}:\n{doc.get('error')}"
            )
        attempts = self._attempts.pop(unit_id)
        del self._outstanding[unit_id]
        os.unlink(path)
        return WorkResult(
            unit=unit,
            payload=doc["payload"],
            elapsed=float(doc.get("elapsed", 0.0)),
            worker=doc.get("worker"),
            attempts=attempts,
            timings=doc.get("timings"),
        )

    def _quarantine_and_requeue(
        self, unit_id: str, unit: WorkUnit, result_path: str
    ) -> None:
        """Handle a corrupt result: preserve it, retry the unit.

        The corrupt document moves to ``corrupt/`` (atomic rename, so
        no poll ever re-reads it) and the unit goes back to ``tasks/``
        with an incremented attempt — bounded by ``max_attempts``, so
        a filesystem that keeps tearing writes fails the campaign with
        a diagnosis instead of looping forever.
        """
        quarantined = quarantine_file(self.queue_dir, result_path)
        if quarantined is None:
            return  # vanished mid-read; the next poll resolves it
        if self.telemetry is not None:
            self.telemetry.emit(make_event(
                "quarantine", unit=unit_id, path=quarantined,
            ))
        attempts = self._attempts[unit_id] + 1
        if attempts > self.max_attempts:
            raise RuntimeError(
                f"unit {unit_id} ({unit.label}): corrupt result "
                f"document (quarantined to {quarantined}) and the "
                f"{self.max_attempts}-attempt budget is exhausted — "
                "is the queue filesystem tearing writes?"
            )
        self._attempts[unit_id] = attempts
        try:
            os.unlink(_lease_path(self.queue_dir, unit_id))
        except FileNotFoundError:
            pass
        atomic_write_bytes(
            _task_path(self.queue_dir, unit_id),
            self._task_doc(unit, attempt=attempts),
        )
        if self.telemetry is not None:
            self.telemetry.emit(make_event(
                "requeue", unit=unit_id, attempt=attempts,
            ))

    def _lease_age(self, unit_id: str) -> Optional[float]:
        try:
            return time.time() - os.stat(
                _lease_path(self.queue_dir, unit_id)
            ).st_mtime
        except FileNotFoundError:
            return None

    def _any_live_lease(self) -> bool:
        for unit_id in self._outstanding:
            age = self._lease_age(unit_id)
            if age is not None and age <= self.lease_timeout:
                return True
        return False

    def _requeue_expired(self) -> List[WorkResult]:
        """Re-enqueue claimed units whose worker stopped heartbeating.

        **Collect-before-requeue**: a worker publishes its result
        *before* releasing its lease, so a result file landing while
        the lease is being expired means the unit finished — it is
        collected and returned (for :meth:`completions` to yield)
        rather than re-enqueued, so a slow-but-successful worker never
        burns an attempt from ``max_attempts`` (or, worse, exhausts
        the budget and fails a campaign whose result is sitting on
        disk)."""
        collected: List[WorkResult] = []
        for unit_id, unit in list(self._outstanding.items()):
            age = self._lease_age(unit_id)
            if age is None:
                continue
            if age <= self.lease_timeout:
                # Early warning: the lease aged past half its window
                # without a heartbeat — the worker is struggling (or
                # its beat thread is), even if it recovers.  One
                # event per delivery attempt.
                if (self.telemetry is not None
                        and age > self.lease_timeout / 2.0):
                    key = (unit_id, self._attempts[unit_id])
                    if key not in self._gap_warned:
                        self._gap_warned.add(key)
                        self.telemetry.emit(make_event(
                            "heartbeat_gap", unit=unit_id,
                            age=round(age, 3),
                            attempt=self._attempts[unit_id],
                        ))
                continue
            result = self._collect(unit_id)
            if result is not None:
                # The dead (or merely slow) owner never released its
                # lease; the unit is done, so the lease is litter.
                try:
                    os.unlink(_lease_path(self.queue_dir, unit_id))
                except FileNotFoundError:
                    pass
                collected.append(result)
                continue
            if self.telemetry is not None:
                self.telemetry.emit(make_event(
                    "lease_expired", unit=unit_id,
                    age=round(age, 3),
                    attempt=self._attempts[unit_id],
                ))
            attempts = self._attempts[unit_id] + 1
            if attempts > self.max_attempts:
                raise RuntimeError(
                    f"unit {unit_id} ({unit.label}): lease expired and "
                    f"the {self.max_attempts}-attempt budget is "
                    "exhausted (workers keep dying mid-unit?)"
                )
            self._attempts[unit_id] = attempts
            try:
                os.unlink(_lease_path(self.queue_dir, unit_id))
            except FileNotFoundError:
                pass
            atomic_write_bytes(
                _task_path(self.queue_dir, unit_id),
                self._task_doc(unit, attempt=attempts),
            )
            if self.telemetry is not None:
                self.telemetry.emit(make_event(
                    "requeue", unit=unit_id, attempt=attempts,
                ))
        return collected

    # -- teardown ------------------------------------------------------------

    def cancel(self) -> None:
        self.cancel_units(list(self._outstanding))

    def cancel_units(self, unit_ids: Iterable[str]) -> None:
        """Withdraw specific outstanding units from the queue.

        Unclaimed task files are unlinked so no worker ever picks them
        up.  A unit some worker already *claimed* is cancelled too:
        its lease is removed — the executing worker cannot be
        interrupted mid-unit, but its heartbeat finds the lease gone,
        and the straggler result it may still publish is swept by the
        next :meth:`completions` poll or at :meth:`close` (previously
        a claimed unit kept its lease, which sat in ``leases/`` as an
        orphan that made later campaigns misread queue pressure).  Any
        result that already landed is removed now — a reused queue
        directory must not replay a cancelled unit's outcome.
        """
        for unit_id in unit_ids:
            if unit_id not in self._outstanding:
                continue
            removed = {}
            for stage, path in (
                ("task", _task_path(self.queue_dir, unit_id)),
                ("lease", _lease_path(self.queue_dir, unit_id)),
                ("result", _result_path(self.queue_dir, unit_id)),
            ):
                try:
                    os.unlink(path)
                    removed[stage] = True
                except FileNotFoundError:
                    removed[stage] = False
            # Track the id for the straggler sweep only when a worker
            # might still publish it — tracking ids that cannot
            # straggle would grow _cancelled_ids (and its per-poll
            # unlink attempts) for the life of a long-lived backend.
            # The dispatcher's own attempt count is authoritative:
            # attempts > 1 means a presumed-dead predecessor may yet
            # finish; otherwise only a current claimant (task file
            # already gone) that has not yet published can.
            straggler_possible = (
                self._attempts[unit_id] > 1
                or (not removed["task"] and not removed["result"])
            )
            if straggler_possible:
                self._cancelled_ids.add(unit_id)
            del self._outstanding[unit_id]
            del self._attempts[unit_id]

    def _sweep_cancelled(self) -> None:
        """Remove straggler results of cancelled units (best effort).

        A worker that was mid-unit when its unit was cancelled still
        publishes on completion; sweeping on every poll (and after the
        workers stopped, in :meth:`close`) keeps the queue directory
        free of stray files after an early-stopped campaign.  An id is
        forgotten once its straggler landed and was swept — a worker
        publishes a unit at most once, so keeping it would only make
        the set (and its per-poll unlink attempts) grow for the life
        of a long-lived backend.  (The pathological second straggler —
        a unit cancelled *after* a lease-expiry re-enqueue put two
        workers on it — is still covered by the submit-time sweep.)
        """
        for unit_id in list(self._cancelled_ids):
            try:
                os.unlink(_result_path(self.queue_dir, unit_id))
            except FileNotFoundError:
                continue
            self._cancelled_ids.discard(unit_id)

    def close(self) -> None:
        """Stop spawned/elastic workers (via the ``stop`` sentinel,
        then escalating) and release the queue.  External workers keep
        running — remove/write the sentinel yourself to manage them."""
        if self._procs or self.supervisor is not None:
            atomic_write_bytes(_stop_path(self.queue_dir), b"")
        if self.supervisor is not None:
            self.supervisor.shutdown()
            self.supervisor = None
        if self._procs:
            deadline = time.monotonic() + 10.0
            for proc in self._procs:
                _stop_proc(proc, deadline)
            self._procs = []
        # The workers are gone (or were never ours): any straggler
        # result a cancelled unit left behind is final litter now.
        self._sweep_cancelled()
        self._cancelled_ids = set()
