"""Filesystem work queue: shard dispatch to independent workers.

The queue is a directory (local disk for multi-process runs, a shared
filesystem for multi-host ones) with one subdirectory per lifecycle
stage::

    queue/
      tasks/    <unit_id>.json   pending unit (self-describing wire doc)
      leases/   <unit_id>.json   claimed unit; file mtime = heartbeat
      results/  <unit_id>.pkl    completed unit (payload or error)
      workers/  <worker_id>.*    worker heartbeat/log files (diagnostics)
      stop                       sentinel: workers drain and exit

Every file appears atomically (write to a temp name + fsync +
``os.replace``), so readers never observe a torn document no matter
when a writer dies.

**Claiming** is a single ``os.rename`` from ``tasks/`` to ``leases/``
— exactly one worker wins, no locks.  While executing, the worker
touches its lease file every ``heartbeat`` seconds (the interval rides
in the task doc, derived from the dispatcher's ``lease_timeout``).

**Dead workers**: the dispatcher re-enqueues any claimed unit whose
lease goes stale (no heartbeat for ``lease_timeout`` seconds) by
moving its doc back to ``tasks/`` with an incremented attempt count,
up to ``max_attempts``.  Unit payloads are pure functions of the wire
doc, so a re-run — even racing a worker that was merely slow, not
dead — produces bit-identical bytes; whichever result lands first is
used.

**Clean failures** (an execution raising) are *not* retried: the
worker writes an error result and the dispatcher raises it, because a
deterministic unit that failed once will fail again.

Workers are started with ``repro worker --queue DIR`` (see
:func:`worker_loop`) or spawned by the dispatcher itself
(``spawn_workers=N``).
"""

from __future__ import annotations

import importlib
import json
import os
import pickle
import socket
import subprocess
import sys
import threading
import time
import traceback
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.backends.base import (
    ExecutionBackend,
    WorkResult,
    WorkUnit,
    execute_unit,
)
from repro.common.fsio import atomic_write_bytes

TASKS_DIR = "tasks"
LEASES_DIR = "leases"
RESULTS_DIR = "results"
WORKERS_DIR = "workers"
STOP_SENTINEL = "stop"

_SUBDIRS = (TASKS_DIR, LEASES_DIR, RESULTS_DIR, WORKERS_DIR)


def ensure_queue_dirs(queue_dir: str) -> None:
    for name in _SUBDIRS:
        os.makedirs(os.path.join(queue_dir, name), exist_ok=True)


def _stop_path(queue_dir: str) -> str:
    return os.path.join(queue_dir, STOP_SENTINEL)


def _task_path(queue_dir: str, unit_id: str) -> str:
    return os.path.join(queue_dir, TASKS_DIR, unit_id + ".json")


def _lease_path(queue_dir: str, unit_id: str) -> str:
    return os.path.join(queue_dir, LEASES_DIR, unit_id + ".json")


def _result_path(queue_dir: str, unit_id: str) -> str:
    return os.path.join(queue_dir, RESULTS_DIR, unit_id + ".pkl")


# -- worker side -------------------------------------------------------------


class _Heartbeat:
    """Touches a lease file on a background thread while a unit runs,
    so the dispatcher can tell a slow worker from a dead one."""

    def __init__(self, path: str, interval: float) -> None:
        self._path = path
        self._interval = max(0.05, interval)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                os.utime(self._path)
            except FileNotFoundError:
                # The dispatcher re-enqueued (or the run was torn
                # down); nothing left to keep alive.
                return
            except OSError:
                # Transient filesystem hiccup (NFS, EIO): keep
                # beating — exiting here would make a healthy worker
                # look dead and burn an attempt for nothing.
                continue

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()


def _claim_next(queue_dir: str) -> Optional[str]:
    """Claim one pending unit; its id, or None when the queue is idle.

    The claim is ``os.rename(tasks/X, leases/X)`` — atomic, exactly
    one winner per task file.  The fresh lease is touched immediately:
    the renamed file keeps the *task's* mtime, which may already be
    older than the lease timeout if the unit waited long for a free
    worker.
    """
    tasks_dir = os.path.join(queue_dir, TASKS_DIR)
    try:
        names = sorted(os.listdir(tasks_dir))
    except FileNotFoundError:
        return None
    for name in names:
        if not name.endswith(".json"):
            continue
        unit_id = name[: -len(".json")]
        try:
            os.rename(
                os.path.join(tasks_dir, name),
                _lease_path(queue_dir, unit_id),
            )
        except FileNotFoundError:
            continue  # another worker won this one
        os.utime(_lease_path(queue_dir, unit_id))
        return unit_id
    return None


def _release_lease(lease_path: str, worker_id: str) -> None:
    """Remove the lease only if this worker still owns it.

    A unit re-enqueued while this worker was merely slow (not dead)
    may since have been claimed by another worker — that successor's
    fresh lease must survive the predecessor finishing late, or the
    successor would look dead while actively computing.
    """
    try:
        with open(lease_path) as handle:
            owner = json.load(handle).get("worker")
    except (OSError, ValueError):
        return
    if owner != worker_id:
        return
    try:
        os.unlink(lease_path)
    except FileNotFoundError:
        pass


def _execute_claimed(
    queue_dir: str, unit_id: str, worker_id: str
) -> Optional[bool]:
    """Run one claimed unit and publish its result.

    True/False for success/failure; None when the claim was lost
    before execution (the dispatcher re-enqueued the unit between the
    claim rename and this read — possible when the task file sat
    unclaimed past the lease timeout, since the rename preserves its
    stale mtime).
    """
    lease_path = _lease_path(queue_dir, unit_id)
    try:
        with open(lease_path) as handle:
            doc = json.load(handle)
    except FileNotFoundError:
        return None
    # Stamp ownership (and refresh the heartbeat) so a slow
    # predecessor finishing late cannot tear down this lease.
    doc["worker"] = worker_id
    atomic_write_bytes(lease_path, json.dumps(doc).encode())
    result: Dict[str, Any] = {
        "worker": worker_id,
        "attempt": int(doc.get("attempt", 1)),
    }
    with _Heartbeat(lease_path, float(doc.get("heartbeat", 5.0))):
        try:
            module = doc.get("kind_module")
            if module:
                # Registers kinds defined outside the built-ins
                # (same trick as pickling run-fn references to a
                # process pool: importing the module re-runs its
                # register_experiment side effects).
                importlib.import_module(module)
            payload, elapsed = execute_unit(WorkUnit.from_doc(doc))
            result.update(ok=True, payload=payload, elapsed=elapsed)
        except Exception:
            result.update(ok=False, error=traceback.format_exc())
    atomic_write_bytes(
        _result_path(queue_dir, unit_id),
        pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL),
    )
    _release_lease(lease_path, worker_id)
    return bool(result["ok"])


def worker_loop(
    queue_dir: str,
    *,
    worker_id: Optional[str] = None,
    poll_interval: float = 0.2,
    max_idle: Optional[float] = None,
    echo: bool = True,
) -> int:
    """The ``repro worker`` main loop; returns units executed.

    Claims and executes units until the queue's ``stop`` sentinel
    appears or — when ``max_idle`` is set — no work arrived for that
    many seconds.  Workers are stateless: everything a unit needs
    rides in its task document, so any number of workers on any hosts
    sharing the directory can serve one campaign.
    """
    worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    ensure_queue_dirs(queue_dir)
    atomic_write_bytes(
        os.path.join(queue_dir, WORKERS_DIR, worker_id + ".json"),
        json.dumps({
            "worker_id": worker_id,
            "pid": os.getpid(),
            "started": time.time(),
        }).encode(),
    )
    if echo:
        print(f"[worker {worker_id}] serving queue {queue_dir}",
              file=sys.stderr, flush=True)
    executed = 0
    idle_since = time.monotonic()
    while True:
        if os.path.exists(_stop_path(queue_dir)):
            break
        unit_id = _claim_next(queue_dir)
        if unit_id is None:
            if (max_idle is not None
                    and time.monotonic() - idle_since > max_idle):
                break
            time.sleep(poll_interval)
            continue
        ok = _execute_claimed(queue_dir, unit_id, worker_id)
        if ok is None:
            continue  # claim lost to a re-enqueue race; move on
        if echo:
            status = "done" if ok else "FAILED"
            print(f"[worker {worker_id}] {unit_id}: {status}",
                  file=sys.stderr, flush=True)
        executed += 1
        idle_since = time.monotonic()
    if echo:
        print(f"[worker {worker_id}] exiting after {executed} unit(s)",
              file=sys.stderr, flush=True)
    return executed


# -- dispatcher side ---------------------------------------------------------


class WorkQueueBackend(ExecutionBackend):
    """Dispatches units through a filesystem queue to ``repro worker``
    processes, with lease-based failure recovery.

    Parameters
    ----------
    queue_dir:
        The queue directory (created if missing).  Share it between
        the dispatcher and every worker — local path for same-host
        workers, network filesystem for cross-host ones.
    lease_timeout:
        Seconds without a heartbeat after which a claimed unit's
        worker is presumed dead and the unit is re-enqueued.
    max_attempts:
        Total tries (1 + re-enqueues) a unit gets before the campaign
        fails; guards against a unit that keeps killing workers.
    spawn_workers:
        Convenience: start this many local ``repro worker`` processes
        alongside the dispatcher (their logs land in
        ``queue/workers/``); they are stopped again by :meth:`close`.
    idle_timeout:
        Optional watchdog: raise if no completion arrived *and* no
        live lease was observed for this many seconds (e.g. nobody
        ever started a worker).  None waits forever.
    """

    def __init__(
        self,
        queue_dir: str,
        *,
        lease_timeout: float = 60.0,
        poll_interval: float = 0.2,
        max_attempts: int = 3,
        spawn_workers: int = 0,
        idle_timeout: Optional[float] = None,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.queue_dir = queue_dir
        self.lease_timeout = lease_timeout
        self.poll_interval = poll_interval
        self.max_attempts = max_attempts
        self.idle_timeout = idle_timeout
        ensure_queue_dirs(queue_dir)
        # A stale sentinel from a previous campaign would make fresh
        # workers exit immediately.
        try:
            os.unlink(_stop_path(queue_dir))
        except FileNotFoundError:
            pass
        self._outstanding: Dict[str, WorkUnit] = {}
        self._attempts: Dict[str, int] = {}
        self._procs: List[subprocess.Popen] = []
        self._log_paths: List[str] = []
        for index in range(spawn_workers):
            self._spawn_worker(index)

    # -- worker management ---------------------------------------------------

    def _spawn_worker(self, index: int) -> None:
        worker_id = f"spawned-{os.getpid()}-{index}"
        log_path = os.path.join(
            self.queue_dir, WORKERS_DIR, worker_id + ".log"
        )
        env = dict(os.environ)
        # Guarantee the child resolves `repro` exactly as we do, even
        # when the package is importable only via sys.path mutations
        # (pytest rootdir conftest, PYTHONPATH=src invocations).
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        log = open(log_path, "ab")
        try:
            self._procs.append(subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "worker",
                    "--queue", self.queue_dir,
                    "--worker-id", worker_id,
                    "--poll", str(self.poll_interval),
                ],
                stdout=log,
                stderr=subprocess.STDOUT,
                env=env,
            ))
            self._log_paths.append(log_path)
        finally:
            log.close()  # the child holds its own handle

    def _check_spawned(self) -> None:
        if not self._procs or not self._outstanding:
            return
        if any(proc.poll() is None for proc in self._procs):
            return
        tails = []
        for path in self._log_paths:
            try:
                with open(path, errors="replace") as handle:
                    tails.append(f"--- {path} ---\n"
                                 + "".join(handle.readlines()[-20:]))
            except OSError:
                continue
        raise RuntimeError(
            "all spawned workers exited with "
            f"{len(self._outstanding)} unit(s) outstanding\n"
            + "\n".join(tails)
        )

    # -- submission ----------------------------------------------------------

    def _task_doc(self, unit: WorkUnit, attempt: int) -> bytes:
        doc = unit.to_doc()
        doc["attempt"] = attempt
        # Workers heartbeat a few times per lease window so one missed
        # beat (scheduler hiccup, slow NFS) is not a death sentence.
        doc["heartbeat"] = max(0.05, self.lease_timeout / 4.0)
        return json.dumps(doc).encode()

    def submit(self, unit: WorkUnit) -> None:
        if unit.unit_id in self._outstanding:
            raise ValueError(f"unit {unit.unit_id!r} already submitted")
        # Unit ids are deterministic, so a reused queue directory may
        # hold this id's leftovers from an earlier campaign (a
        # consumed-then-raised error result, an orphaned lease, a
        # cancelled task).  Sweep them, or completions() would replay
        # the stale outcome instead of dispatching fresh work.
        for stale in (
            _result_path(self.queue_dir, unit.unit_id),
            _lease_path(self.queue_dir, unit.unit_id),
            _task_path(self.queue_dir, unit.unit_id),
        ):
            try:
                os.unlink(stale)
            except FileNotFoundError:
                pass
        self._outstanding[unit.unit_id] = unit
        self._attempts[unit.unit_id] = 1
        atomic_write_bytes(
            _task_path(self.queue_dir, unit.unit_id),
            self._task_doc(unit, attempt=1),
        )

    # -- completion ----------------------------------------------------------

    def completions(self) -> Iterator[WorkResult]:
        last_alive = time.monotonic()
        while self._outstanding:
            progressed = False
            for unit_id in list(self._outstanding):
                result = self._collect(unit_id)
                if result is not None:
                    progressed = True
                    yield result
            if progressed or self._any_live_lease():
                last_alive = time.monotonic()
            if not self._outstanding:
                break
            self._requeue_expired()
            if not progressed:
                self._check_spawned()
                if (self.idle_timeout is not None
                        and time.monotonic() - last_alive
                        > self.idle_timeout):
                    raise RuntimeError(
                        f"work queue idle for {self.idle_timeout:.0f}s "
                        f"with {len(self._outstanding)} unit(s) "
                        "outstanding — are any workers running? "
                        f"(start one with: repro worker --queue "
                        f"{self.queue_dir})"
                    )
                time.sleep(self.poll_interval)

    def _collect(self, unit_id: str) -> Optional[WorkResult]:
        path = _result_path(self.queue_dir, unit_id)
        try:
            with open(path, "rb") as handle:
                doc = pickle.load(handle)
        except FileNotFoundError:
            return None
        unit = self._outstanding.get(unit_id)
        if unit is None:
            # Cancelled mid-drain, but a straggler worker published its
            # result after the cancel swept the file: consume the
            # orphan now so a reused queue directory never replays it.
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
            return None
        if not doc.get("ok"):
            # Consume the error result: leaving it on disk would make
            # a reused queue directory replay this failure forever.
            os.unlink(path)
            raise RuntimeError(
                f"unit {unit_id} ({unit.label}) failed on worker "
                f"{doc.get('worker')}:\n{doc.get('error')}"
            )
        attempts = self._attempts.pop(unit_id)
        del self._outstanding[unit_id]
        os.unlink(path)
        return WorkResult(
            unit=unit,
            payload=doc["payload"],
            elapsed=float(doc.get("elapsed", 0.0)),
            worker=doc.get("worker"),
            attempts=attempts,
        )

    def _lease_age(self, unit_id: str) -> Optional[float]:
        try:
            return time.time() - os.stat(
                _lease_path(self.queue_dir, unit_id)
            ).st_mtime
        except FileNotFoundError:
            return None

    def _any_live_lease(self) -> bool:
        for unit_id in self._outstanding:
            age = self._lease_age(unit_id)
            if age is not None and age <= self.lease_timeout:
                return True
        return False

    def _requeue_expired(self) -> None:
        """Re-enqueue claimed units whose worker stopped heartbeating."""
        for unit_id, unit in list(self._outstanding.items()):
            age = self._lease_age(unit_id)
            if age is None or age <= self.lease_timeout:
                continue
            # The worker may have finished right at the deadline:
            # results are published before the lease is removed, so
            # check once more before declaring it dead.
            if os.path.exists(_result_path(self.queue_dir, unit_id)):
                continue
            attempts = self._attempts[unit_id] + 1
            if attempts > self.max_attempts:
                raise RuntimeError(
                    f"unit {unit_id} ({unit.label}): lease expired and "
                    f"the {self.max_attempts}-attempt budget is "
                    "exhausted (workers keep dying mid-unit?)"
                )
            self._attempts[unit_id] = attempts
            try:
                os.unlink(_lease_path(self.queue_dir, unit_id))
            except FileNotFoundError:
                pass
            atomic_write_bytes(
                _task_path(self.queue_dir, unit_id),
                self._task_doc(unit, attempt=attempts),
            )

    # -- teardown ------------------------------------------------------------

    def cancel(self) -> None:
        for unit_id in list(self._outstanding):
            try:
                os.unlink(_task_path(self.queue_dir, unit_id))
            except FileNotFoundError:
                pass  # already claimed; its result will be orphaned
            del self._outstanding[unit_id]
            del self._attempts[unit_id]

    def cancel_units(self, unit_ids: Iterable[str]) -> None:
        """Withdraw specific outstanding units from the queue.

        Unclaimed task files are unlinked so no worker ever picks them
        up; a unit some worker already claimed runs to completion on
        that worker, but the dispatcher stops tracking it, so its
        orphaned result (and released lease) are simply swept the next
        time the unit id is submitted.  Any result that already landed
        is removed now — a reused queue directory must not replay a
        cancelled unit's outcome.
        """
        for unit_id in unit_ids:
            if unit_id not in self._outstanding:
                continue
            for stale in (
                _task_path(self.queue_dir, unit_id),
                _result_path(self.queue_dir, unit_id),
            ):
                try:
                    os.unlink(stale)
                except FileNotFoundError:
                    pass
            del self._outstanding[unit_id]
            del self._attempts[unit_id]

    def close(self) -> None:
        """Stop spawned workers (via the ``stop`` sentinel, then
        escalating) and release the queue.  External workers keep
        running — remove/write the sentinel yourself to manage them."""
        if self._procs:
            atomic_write_bytes(_stop_path(self.queue_dir), b"")
            deadline = time.monotonic() + 10.0
            for proc in self._procs:
                timeout = max(0.1, deadline - time.monotonic())
                try:
                    proc.wait(timeout=timeout)
                except subprocess.TimeoutExpired:
                    proc.terminate()
                    try:
                        proc.wait(timeout=5.0)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait()
            self._procs = []
