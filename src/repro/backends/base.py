"""The execution-backend protocol: where campaign work units run.

:class:`~repro.campaigns.runner.CampaignRunner` is backend-agnostic:
it turns a campaign into self-describing :class:`WorkUnit` s (one per
whole cell, or one per shard of a sharded cell), submits them to an
:class:`ExecutionBackend`, and consumes :class:`WorkResult` s in
whatever order the backend completes them.  Because every unit's
randomness is keyed to the spec (and, for shards, to absolute sample
positions), the merged campaign payloads are bit-identical no matter
which backend ran the units or in what order they finished — the
golden-trace suite asserts exactly that over all three built-ins:

* :class:`~repro.backends.local.SerialBackend` — in-process, in
  submission order (the reference semantics);
* :class:`~repro.backends.local.ProcessPoolBackend` — a
  ``ProcessPoolExecutor`` on this host;
* :class:`~repro.backends.workqueue.WorkQueueBackend` — a filesystem
  work queue dispatching units to independent ``repro worker``
  processes (any host sharing the directory), with lease-based
  dead-worker detection and automatic re-enqueue.

Contract
--------

``submit`` enqueues units; ``completions`` yields one
:class:`WorkResult` per outstanding unit and returns when all are
drained (failures raise).  A backend may be reused for several
submit/drain rounds; ``close`` releases its resources (pools,
worker processes).  Backends never share mutable state with units —
a unit must be executable from its wire form alone (see
:meth:`WorkUnit.to_doc`).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Optional, Tuple

from repro.campaigns.registry import ExperimentKind, get_experiment
from repro.campaigns.spec import ExperimentSpec
from repro.core.batch import Shard


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable piece of campaign work: a cell, or one shard.

    ``unit_id`` is the caller's handle (and the work-queue file stem):
    unique within one submit/drain round, filename-safe.  The unit is
    *self-describing* — :meth:`to_doc`/:meth:`from_doc` round-trip it
    through JSON so a worker process with no shared state can execute
    it from the document alone.
    """

    unit_id: str
    spec: ExperimentSpec
    shard: Optional[Shard] = None

    @property
    def label(self) -> str:
        if self.shard is None:
            return self.spec.cell_id
        return (
            f"{self.spec.cell_id} "
            f"shard {self.shard.index + 1}/{self.shard.num_shards}"
        )

    def to_doc(self) -> dict:
        """JSON-able wire form (the work-queue task file content)."""
        kind = get_experiment(self.spec.kind)
        doc: dict = {
            "unit_id": self.unit_id,
            "spec": self.spec.to_doc(),
            # Importing this module in the worker re-runs the kind's
            # ``register_experiment`` side effect, so kinds registered
            # outside the built-ins (benchmarks) stay dispatchable.
            "kind_module": kind.run.__module__,
            "shard": None,
        }
        if self.shard is not None:
            doc["shard"] = {
                "index": self.shard.index,
                "num_shards": self.shard.num_shards,
                "start": self.shard.start,
                "end": self.shard.end,
            }
        return doc

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "WorkUnit":
        shard_doc = doc.get("shard")
        shard = (
            Shard(
                index=int(shard_doc["index"]),
                num_shards=int(shard_doc["num_shards"]),
                start=int(shard_doc["start"]),
                end=int(shard_doc["end"]),
            )
            if shard_doc
            else None
        )
        return cls(
            unit_id=doc["unit_id"],
            spec=ExperimentSpec.from_doc(doc["spec"]),
            shard=shard,
        )


@dataclass(frozen=True)
class WorkResult:
    """One completed unit: its payload plus execution metadata."""

    unit: WorkUnit
    payload: Any
    #: Compute seconds on the executing worker.
    elapsed: float
    #: Identity of the executing worker, when the backend knows one.
    worker: Optional[str] = None
    #: 1 + the number of times the unit was re-enqueued before this
    #: result arrived (lease expiries under the work queue).
    attempts: int = 1
    #: Execution-only phase timings stamped by the worker (wall-clock
    #: start/end, CPU seconds, host) — telemetry metadata that rides
    #: the wire next to the payload but, like
    #: :data:`~repro.campaigns.spec.EXECUTION_PARAMS`, never enters
    #: spec identity or the payload bytes.
    timings: Optional[Mapping[str, Any]] = None


def resolve_unit_kind(unit: WorkUnit) -> ExperimentKind:
    kind = get_experiment(unit.spec.kind)
    if unit.shard is not None and not kind.shardable:
        raise ValueError(
            f"kind {kind.name!r} is not shardable but unit "
            f"{unit.unit_id!r} carries a shard"
        )
    return kind


def execute_unit(unit: WorkUnit) -> Tuple[Any, float]:
    """(payload, compute seconds) for one unit, in this process."""
    kind = resolve_unit_kind(unit)
    start = time.perf_counter()
    if unit.shard is None:
        payload = kind.run(unit.spec)
    else:
        payload = kind.run_shard(unit.spec, unit.shard)
    return payload, time.perf_counter() - start


def stamp_timings(started: float, cpu_started: float) -> "dict":
    """The execution-phase timing doc every executor stamps.

    ``started``/``cpu_started`` are ``time.time()`` /
    ``time.process_time()`` readings taken just before the unit ran.
    One shared builder so local backends and both worker transports
    produce the same keys (the journal's span fields).
    """
    import socket

    return {
        "started": started,
        "ended": time.time(),
        "cpu": time.process_time() - cpu_started,
        "host": socket.gethostname(),
    }


class ExecutionBackend(abc.ABC):
    """Submit work units, drain completions, release resources."""

    @abc.abstractmethod
    def submit(self, unit: WorkUnit) -> None:
        """Enqueue one unit for execution."""

    @abc.abstractmethod
    def completions(self) -> Iterator[WorkResult]:
        """Yield results for every outstanding unit, then return.

        Completion order is backend-defined (serial: submission
        order).  A unit whose execution fails raises out of the
        iterator — campaign payloads are deterministic, so retrying a
        *clean* failure cannot help (crashed/lost workers are a
        different matter: the work queue re-enqueues those).
        """

    @abc.abstractmethod
    def cancel(self) -> None:
        """Drop units not yet handed to a worker (best effort)."""

    def cancel_units(self, unit_ids: Iterable[str]) -> None:
        """Drop *specific* outstanding units, best effort.

        The early-stopping path: once a cell's verdict is decided, the
        runner cancels its remaining shards by id.  A cancelled unit
        is never yielded by :meth:`completions`; a unit already
        executing when the cancel lands may still run to completion —
        backends either suppress its result (local backends) or sweep
        the straggler's files on later polls and at close (work
        queue), and the caller must tolerate not hearing about it
        either way.  The
        default is a no-op: the caller already discards results it no
        longer cares about, so a backend without cancellation support
        merely wastes the cancelled units' compute.
        """

    def close(self) -> None:
        """Release pools/workers.  Idempotent; the default is a no-op."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
