"""repro.backends — pluggable execution backends for campaigns.

The campaign engine (:mod:`repro.campaigns`) decides *what* to run —
cells, shard plans, merges, caching.  This package decides *where*:
every backend takes the same self-describing :class:`WorkUnit` s and
streams back :class:`WorkResult` s, and because unit payloads are pure
functions of their wire form, campaign results are bit-identical
across all of them.

* :class:`SerialBackend` — in-process, submission order (reference).
* :class:`ProcessPoolBackend` — a process pool on this host.
* :class:`WorkQueueBackend` — a filesystem work queue served by
  independent ``repro worker`` processes (same host or any host
  sharing the directory), with lease-based dead-worker recovery.
* :class:`HttpQueueBackend` — the same queue served over HTTP by a
  ``repro coordinator`` process (:class:`CoordinatorServer`), so
  worker hosts need network reach instead of a shared filesystem.

Quickstart::

    from repro.backends import WorkQueueBackend
    from repro.campaigns import CampaignRunner, bernstein_grid

    backend = WorkQueueBackend("shared/queue", spawn_workers=2)
    try:
        runner = CampaignRunner(backend=backend, max_shards_per_cell=8)
        results = runner.run(bernstein_grid(num_samples=300_000))
    finally:
        backend.close()
"""

from repro.backends.base import (
    ExecutionBackend,
    WorkResult,
    WorkUnit,
    execute_unit,
)
from repro.backends.coordinator import (
    CoordinatorClient,
    CoordinatorServer,
    CoordinatorWorkerLauncher,
    HttpQueueBackend,
    worker_loop_http,
)
from repro.backends.local import ProcessPoolBackend, SerialBackend
from repro.backends.workqueue import (
    ElasticStats,
    ElasticSupervisor,
    QueueWorkerLauncher,
    WorkerLauncher,
    WorkQueueBackend,
    worker_loop,
)

__all__ = [
    "CoordinatorClient",
    "CoordinatorServer",
    "CoordinatorWorkerLauncher",
    "ElasticStats",
    "ElasticSupervisor",
    "ExecutionBackend",
    "HttpQueueBackend",
    "ProcessPoolBackend",
    "QueueWorkerLauncher",
    "SerialBackend",
    "WorkerLauncher",
    "WorkQueueBackend",
    "WorkResult",
    "WorkUnit",
    "execute_unit",
    "worker_loop",
    "worker_loop_http",
]
